//! Merging per-worker trace state into a report, and exporting it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::buffer::TraceBuffer;
use crate::event::{Event, EventKind, NUM_KINDS};
use crate::hist::{bucket_bounds, HistSnapshot, BUCKETS};
use crate::json::Json;

/// One worker's drained event stream.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker index.
    pub index: usize,
    /// Events in publication order.
    pub events: Vec<Event>,
    /// Events this worker dropped on ring overflow.
    pub dropped: u64,
}

/// The merged observability picture of a runtime (or one run window).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Per-worker event streams.
    pub workers: Vec<WorkerTrace>,
    /// Event counts by kind, summed over workers.
    pub counts: [u64; NUM_KINDS],
    /// Steal-to-first-poll latency (ns), merged over workers.
    pub steal_latency: HistSnapshot,
    /// Suspend-to-resume latency (ns), derived by pairing
    /// `SyncSuspend`/`SyncResume` events across workers.
    pub suspend_latency: HistSnapshot,
    /// Idle-spin durations (ns), merged over workers.
    pub idle_spin: HistSnapshot,
    /// Owner-deque occupancy samples, merged over workers.
    pub occupancy: HistSnapshot,
    /// Futex-park durations (ns), merged over workers.
    pub parked: HistSnapshot,
    /// Total events dropped on ring overflow.
    pub dropped_total: u64,
    /// Span from the first to the last retained event (ns).
    pub span_ns: u64,
}

impl TraceReport {
    /// Drains every worker's ring and merges histograms into one report.
    ///
    /// Suspend-to-resume latency is computed here: `SyncSuspend` and
    /// `SyncResume` events carry a frame id, and each resume is paired
    /// with the latest unmatched suspend of the same id in global
    /// timestamp order (a suspended frame is resumed exactly once per
    /// region, so ids pair 1:1 modulo ring overflow).
    pub fn collect(buffers: &[TraceBuffer]) -> TraceReport {
        let mut workers = Vec::with_capacity(buffers.len());
        let mut counts = [0u64; NUM_KINDS];
        let mut steal_latency = HistSnapshot::default();
        let mut idle_spin = HistSnapshot::default();
        let mut occupancy = HistSnapshot::default();
        let mut parked = HistSnapshot::default();
        let mut dropped_total = 0;

        for (index, buf) in buffers.iter().enumerate() {
            let mut events = Vec::new();
            buf.ring.drain_into(&mut events);
            for ev in &events {
                counts[ev.kind as usize] += 1;
            }
            steal_latency.merge(&buf.steal_latency.snapshot());
            idle_spin.merge(&buf.idle_spin.snapshot());
            occupancy.merge(&buf.occupancy.snapshot());
            parked.merge(&buf.parked.snapshot());
            let dropped = buf.ring.dropped();
            dropped_total += dropped;
            workers.push(WorkerTrace {
                index,
                events,
                dropped,
            });
        }

        // Pair suspends with resumes across workers, in timestamp order.
        let mut sync_events: Vec<&Event> = workers
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| matches!(e.kind, EventKind::SyncSuspend | EventKind::SyncResume))
            .collect();
        sync_events.sort_by_key(|e| e.ts_ns);
        let mut open: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut suspend_latency = HistSnapshot::default();
        for ev in sync_events {
            match ev.kind {
                EventKind::SyncSuspend => open.entry(ev.arg).or_default().push(ev.ts_ns),
                EventKind::SyncResume => {
                    if let Some(stack) = open.get_mut(&ev.arg) {
                        if let Some(started) = stack.pop() {
                            suspend_latency.record(ev.ts_ns.saturating_sub(started));
                        }
                    }
                }
                _ => unreachable!(),
            }
        }

        let first = workers
            .iter()
            .filter_map(|w| w.events.first())
            .map(|e| e.ts_ns)
            .min();
        let last = workers
            .iter()
            .filter_map(|w| w.events.last())
            .map(|e| e.ts_ns)
            .max();
        let span_ns = match (first, last) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        };

        TraceReport {
            workers,
            counts,
            steal_latency,
            suspend_latency,
            idle_spin,
            occupancy,
            parked,
            dropped_total,
            span_ns,
        }
    }

    /// Count of events of `kind` across workers.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events retained across workers.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// A human-readable summary: event counts per kind and the latency
    /// histograms (mean / p50 / p99 upper bounds / max).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} workers, {} events, {} dropped, span {}",
            self.workers.len(),
            self.total_events(),
            self.dropped_total,
            fmt_ns(self.span_ns),
        );
        let _ = writeln!(out, "  {:<14} {:>12}   per-worker", "event", "count");
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n == 0 {
                continue;
            }
            let per: Vec<String> = self
                .workers
                .iter()
                .map(|w| {
                    w.events
                        .iter()
                        .filter(|e| e.kind == kind)
                        .count()
                        .to_string()
                })
                .collect();
            let _ = writeln!(out, "  {:<14} {:>12}   [{}]", kind.name(), n, per.join(" "));
        }
        for (name, h) in [
            ("steal→first-poll", &self.steal_latency),
            ("suspend→resume", &self.suspend_latency),
            ("idle spin", &self.idle_spin),
            ("parked", &self.parked),
        ] {
            let _ = writeln!(out, "  {}", fmt_hist_line(name, h, fmt_ns));
        }
        let _ = writeln!(
            out,
            "  {}",
            fmt_hist_line("deque occupancy", &self.occupancy, |v| v.to_string())
        );
        out
    }

    /// The report as a JSON document (counts, histograms, per-worker event
    /// totals — not the raw event streams; use [`TraceReport::
    /// chrome_trace`] for those).
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("workers".to_string(), Json::Num(self.workers.len() as f64));
        root.insert("dropped".to_string(), Json::Num(self.dropped_total as f64));
        root.insert("span_ns".to_string(), Json::Num(self.span_ns as f64));
        let mut counts = BTreeMap::new();
        for kind in EventKind::ALL {
            counts.insert(kind.name().to_string(), Json::Num(self.count(kind) as f64));
        }
        root.insert("counts".to_string(), Json::Obj(counts));
        for (key, h) in [
            ("steal_latency_ns", &self.steal_latency),
            ("suspend_latency_ns", &self.suspend_latency),
            ("idle_spin_ns", &self.idle_spin),
            ("deque_occupancy", &self.occupancy),
            ("parked_ns", &self.parked),
        ] {
            root.insert(key.to_string(), hist_json(h));
        }
        Json::Obj(root).render()
    }

    /// The full event streams in Chrome `trace_event` JSON (the
    /// "JSON Array Format" with a `traceEvents` wrapper), one track
    /// (`tid`) per worker. Loadable in Perfetto / `chrome://tracing`.
    ///
    /// Mapping: every worker gets a `thread_name` metadata event; `Idle`
    /// events become duration (`"X"`) slices spanning the idle period;
    /// everything else becomes a thread-scoped instant (`"i"`) with its
    /// argument attached.
    pub fn chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for w in &self.workers {
            let mut meta = BTreeMap::new();
            meta.insert("name".to_string(), Json::Str("thread_name".into()));
            meta.insert("ph".to_string(), Json::Str("M".into()));
            meta.insert("pid".to_string(), Json::Num(1.0));
            meta.insert("tid".to_string(), Json::Num(w.index as f64));
            let mut args = BTreeMap::new();
            args.insert("name".to_string(), Json::Str(format!("worker {}", w.index)));
            meta.insert("args".to_string(), Json::Obj(args));
            events.push(Json::Obj(meta));

            for ev in &w.events {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::Str(ev.kind.name().into()));
                obj.insert("pid".to_string(), Json::Num(1.0));
                obj.insert("tid".to_string(), Json::Num(w.index as f64));
                obj.insert("ts".to_string(), Json::Num(ev.ts_ns as f64 / 1_000.0));
                match ev.kind {
                    EventKind::Idle | EventKind::Unpark => {
                        obj.insert("ph".to_string(), Json::Str("X".into()));
                        obj.insert("dur".to_string(), Json::Num(ev.arg as f64 / 1_000.0));
                    }
                    _ => {
                        obj.insert("ph".to_string(), Json::Str("i".into()));
                        obj.insert("s".to_string(), Json::Str("t".into()));
                    }
                }
                if ev.arg != 0 && !matches!(ev.kind, EventKind::Idle | EventKind::Unpark) {
                    let mut args = BTreeMap::new();
                    match ev.kind {
                        // Steal args pack victim + stolen frame id.
                        EventKind::Steal => {
                            args.insert(
                                "victim".to_string(),
                                Json::Num(crate::event::steal_victim(ev.arg) as f64),
                            );
                            args.insert(
                                "frame".to_string(),
                                Json::Num(crate::event::steal_frame(ev.arg) as f64),
                            );
                        }
                        EventKind::StealEmpty | EventKind::StealRetry => {
                            args.insert("victim".to_string(), Json::Num(ev.arg as f64));
                        }
                        EventKind::Spawn
                        | EventKind::FastPop
                        | EventKind::OwnTake
                        | EventKind::Join
                        | EventKind::SyncInline
                        | EventKind::SyncSuspend
                        | EventKind::SyncResume => {
                            args.insert("frame".to_string(), Json::Num(ev.arg as f64));
                        }
                        EventKind::Occupancy => {
                            args.insert("len".to_string(), Json::Num(ev.arg as f64));
                        }
                        EventKind::Wake => {
                            args.insert("target".to_string(), Json::Num(ev.arg as f64));
                        }
                        _ => {
                            args.insert("arg".to_string(), Json::Num(ev.arg as f64));
                        }
                    }
                    obj.insert("args".to_string(), Json::Obj(args));
                }
                events.push(Json::Obj(obj));
            }
        }
        let mut root = BTreeMap::new();
        root.insert("traceEvents".to_string(), Json::Arr(events));
        root.insert("displayTimeUnit".to_string(), Json::Str("ns".into()));
        Json::Obj(root).render()
    }
}

fn hist_json(h: &HistSnapshot) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("count".to_string(), Json::Num(h.count as f64));
    obj.insert("sum".to_string(), Json::Num(h.sum as f64));
    obj.insert("max".to_string(), Json::Num(h.max as f64));
    obj.insert("mean".to_string(), Json::Num(h.mean()));
    obj.insert(
        "p50_ub".to_string(),
        Json::Num(h.quantile_upper_bound(0.5) as f64),
    );
    obj.insert(
        "p99_ub".to_string(),
        Json::Num(h.quantile_upper_bound(0.99) as f64),
    );
    // Sparse buckets: [[lo, count], ...].
    let buckets: Vec<Json> = (0..BUCKETS)
        .filter(|&i| h.buckets[i] != 0)
        .map(|i| {
            Json::Arr(vec![
                Json::Num(bucket_bounds(i).0 as f64),
                Json::Num(h.buckets[i] as f64),
            ])
        })
        .collect();
    obj.insert("buckets".to_string(), Json::Arr(buckets));
    Json::Obj(obj)
}

fn fmt_hist_line(name: &str, h: &HistSnapshot, unit: impl Fn(u64) -> String) -> String {
    if h.count == 0 {
        return format!("{name:<18} (no samples)");
    }
    format!(
        "{name:<18} n={} mean={} p50≤{} p99≤{} max={}",
        h.count,
        unit(h.mean() as u64),
        unit(h.quantile_upper_bound(0.5)),
        unit(h.quantile_upper_bound(0.99)),
        unit(h.max),
    )
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::frame_id;

    fn sample_buffers() -> Vec<TraceBuffer> {
        let bufs = vec![TraceBuffer::new(256), TraceBuffer::new(256)];
        let frame = frame_id(0x1000 as *const ());
        // Worker 0: spawns + a suspend.
        bufs[0].spawn(frame, || 2);
        bufs[0].event(EventKind::FastPop, frame);
        bufs[0].event(EventKind::SyncSuspend, frame);
        // Worker 1: steals and resumes the suspended frame.
        bufs[1].steal_success(0, frame);
        bufs[1].resume_finished();
        bufs[1].event(EventKind::SyncResume, frame_id(0x1000 as *const ()));
        bufs[1].idle_enter();
        bufs[1].idle_exit();
        // Worker 1 parks once and is woken by worker 0.
        bufs[1].park_begin();
        bufs[1].park_end();
        bufs[0].wake(1);
        bufs
    }

    #[test]
    fn collect_merges_counts_and_pairs_syncs() {
        let bufs = sample_buffers();
        let report = TraceReport::collect(&bufs);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.count(EventKind::Spawn), 1);
        assert_eq!(report.count(EventKind::Steal), 1);
        assert_eq!(report.count(EventKind::Idle), 1);
        assert_eq!(report.count(EventKind::Park), 1);
        assert_eq!(report.count(EventKind::Unpark), 1);
        assert_eq!(report.count(EventKind::Wake), 1);
        assert_eq!(report.parked.count, 1);
        assert_eq!(
            report.suspend_latency.count, 1,
            "suspend paired with resume"
        );
        assert_eq!(report.steal_latency.count, 1);
        assert_eq!(report.dropped_total, 0);
        // collect() drains: a second collect sees no events but keeps
        // histogram state (histograms are cumulative).
        let again = TraceReport::collect(&bufs);
        assert_eq!(again.total_events(), 0);
        assert_eq!(again.steal_latency.count, 1);
    }

    #[test]
    fn unmatched_resume_ignored() {
        let bufs = vec![TraceBuffer::new(64)];
        bufs[0].event(EventKind::SyncResume, 77);
        let report = TraceReport::collect(&bufs);
        assert_eq!(report.suspend_latency.count, 0);
    }

    #[test]
    fn summary_mentions_all_recorded_kinds() {
        let report = TraceReport::collect(&sample_buffers());
        let summary = report.summary_table();
        for kind in [EventKind::Spawn, EventKind::Steal, EventKind::Idle] {
            assert!(summary.contains(kind.name()), "missing {}", kind.name());
        }
        assert!(summary.contains("steal→first-poll"));
    }

    #[test]
    fn json_export_parses_back() {
        let report = TraceReport::collect(&sample_buffers());
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("workers").unwrap().as_num(), Some(2.0));
        let counts = parsed.get("counts").unwrap();
        assert_eq!(counts.get("steal").unwrap().as_num(), Some(1.0));
        assert!(parsed
            .get("steal_latency_ns")
            .unwrap()
            .get("count")
            .is_some());
    }

    #[test]
    fn chrome_trace_structure() {
        let report = TraceReport::collect(&sample_buffers());
        let parsed = Json::parse(&report.chrome_trace()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // One thread_name metadata record per worker.
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        let tids: Vec<f64> = meta
            .iter()
            .map(|e| e.get("tid").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(tids, [0.0, 1.0]);
        // The idle event is a duration slice with a dur field.
        let idle = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("idle"))
            .unwrap();
        assert_eq!(idle.get("ph").unwrap().as_str(), Some("X"));
        assert!(idle.get("dur").unwrap().as_num().unwrap() >= 0.0);
        // Instants carry the thread scope.
        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("steal"))
            .unwrap();
        assert_eq!(steal.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(steal.get("s").unwrap().as_str(), Some("t"));
        // Packed steal args decode to victim + frame provenance.
        let steal_args = steal.get("args").unwrap();
        assert_eq!(steal_args.get("victim").unwrap().as_num(), Some(0.0));
        assert!(steal_args.get("frame").unwrap().as_num().unwrap() > 0.0);
        // A park renders as an unpark duration slice plus a park instant.
        let unpark = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("unpark"))
            .unwrap();
        assert_eq!(unpark.get("ph").unwrap().as_str(), Some("X"));
        // A wake instant names its target worker.
        let wake = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("wake"))
            .unwrap();
        assert_eq!(
            wake.get("args").unwrap().get("target").unwrap().as_num(),
            Some(1.0)
        );
    }
}
