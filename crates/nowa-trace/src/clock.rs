//! The trace clock: nanoseconds since a process-wide epoch.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call in this process.
///
/// After the first call this is one atomic load plus a monotonic clock
/// read; all workers share the epoch, so timestamps are comparable across
/// threads.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_shared() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        let c = std::thread::spawn(now_ns).join().unwrap();
        // The other thread's reading uses the same epoch: it must be close
        // to (and at least) this thread's earlier reading.
        assert!(c >= a);
    }
}
