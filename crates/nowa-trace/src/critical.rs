//! Critical-path state and the assembled causal profile.
//!
//! [`crate::dag`] replays the per-worker deques from causal events; this
//! module holds the quantity it propagates — a *path value*, the length of
//! the longest chain of dependent work ending at a point in the execution,
//! together with the attribution of that length — and the final
//! [`CausalProfile`] with its exporters.
//!
//! The recurrence is the classic work/span one (Cilkview): a spawn forks
//! the current path into child and continuation; a join takes the max of
//! the joining strands; sequential work extends the path. Replaying it
//! over the event stream yields the *theoretical* span T∞ — what an
//! infinite-processor schedule would take — while summing all busy time
//! gives the burdened work T1.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventKind, NUM_KINDS};
use crate::hist::HistSnapshot;
use crate::json::Json;
use crate::report::WorkerTrace;

/// A value in the span recurrence: a path length plus where it came from.
///
/// `max` over path values compares lengths and keeps the winner's
/// attribution, so the final maximum describes the critical path itself.
#[derive(Debug, Clone, Default)]
pub(crate) struct PathVal {
    /// Path length in ns.
    pub len: u64,
    /// Path nanoseconds bucketed by the event kind that terminated each
    /// busy segment (the "phase" attribution).
    pub by_kind: [u64; NUM_KINDS],
    /// Steal edges traversed along this path.
    pub steal_edges: u64,
    /// Realized time records on this path sat in a deque before being
    /// stolen (not part of `len`; wall-clock delay, not dependence depth).
    pub deque_wait_ns: u64,
    /// Realized suspend→resume wall time at syncs along this path (also
    /// not part of `len`).
    pub suspend_wait_ns: u64,
    /// Busy segments folded into this path.
    pub segments: u64,
}

impl PathVal {
    /// Extends the path by a busy segment of `ns` that ended with `kind`.
    pub fn add(&mut self, ns: u64, kind: EventKind) {
        if ns > 0 {
            self.len += ns;
            self.by_kind[kind as usize] += ns;
            self.segments += 1;
        }
    }

    /// Replaces `self` with `other` if `other` is the longer path.
    pub fn fold_max(&mut self, other: &PathVal) {
        if other.len > self.len {
            *self = other.clone();
        }
    }
}

/// The critical path of a run: its length and its composition.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Span T∞ in ns — the length of the longest dependence chain.
    pub span_ns: u64,
    /// Span ns attributed per event kind terminating each busy segment
    /// (kind name, ns), non-zero entries only, largest first.
    pub phases: Vec<(&'static str, u64)>,
    /// Steal edges traversed by the critical path.
    pub steal_edges: u64,
    /// Realized deque-wait delay along the critical path (ns).
    pub deque_wait_ns: u64,
    /// Realized sync-suspension wait along the critical path (ns).
    pub suspend_wait_ns: u64,
    /// Busy segments composing the critical path.
    pub segments: u64,
}

impl From<PathVal> for CriticalPath {
    fn from(p: PathVal) -> CriticalPath {
        let mut phases: Vec<(&'static str, u64)> = EventKind::ALL
            .iter()
            .filter_map(|k| {
                let ns = p.by_kind[*k as usize];
                (ns > 0).then_some((k.name(), ns))
            })
            .collect();
        phases.sort_by_key(|&(_, ns)| core::cmp::Reverse(ns));
        CriticalPath {
            span_ns: p.len,
            phases,
            steal_edges: p.steal_edges,
            deque_wait_ns: p.deque_wait_ns,
            suspend_wait_ns: p.suspend_wait_ns,
            segments: p.segments,
        }
    }
}

/// Cilkview-style numbers for one run, reconstructed from causal events.
///
/// Built by [`CausalProfile::from_workers`] (see the `dag` module for the
/// replay). Robust to ring overflow: drops make the reconstruction
/// best-effort and are reported via [`CausalProfile::complete`] and the
/// `unmatched_*` counters rather than corrupting the numbers.
#[derive(Debug, Clone, Default)]
pub struct CausalProfile {
    /// Workers that contributed events.
    pub workers: usize,
    /// Burdened work T1: total busy ns summed over workers (idle and
    /// parked periods excluded).
    pub t1_ns: u64,
    /// Span T∞: longest dependence chain observed (ns).
    pub span_ns: u64,
    /// Wall-clock span of the event stream (first to last event, ns).
    pub wall_ns: u64,
    /// Offered spawns (deque records created).
    pub spawns: u64,
    /// Steal events.
    pub steals: u64,
    /// Steals paired with a spawn record in deque replay.
    pub matched_steals: u64,
    /// Steals with no matching record (ring overflow or torn stream).
    pub unmatched_steals: u64,
    /// Fast-path pops.
    pub fast_pops: u64,
    /// Own-deque takes from the work-finding loop.
    pub own_takes: u64,
    /// Pops/takes with no matching record.
    pub unmatched_pops: u64,
    /// Steals/pops whose event frame id disagreed with the replayed
    /// record's (frame-id collision or torn stream).
    pub frame_mismatches: u64,
    /// Child joins (continuation consumed elsewhere).
    pub joins: u64,
    /// Sync suspensions.
    pub suspensions: u64,
    /// Root tasks taken from the injector.
    pub roots: u64,
    /// Events dropped on ring overflow (from the worker streams).
    pub dropped: u64,
    /// Every matched steal edge, in steal-timestamp order.
    pub steal_edges: Vec<StealEdge>,
    /// Time stolen records spent in their deque before the steal (ns).
    pub time_in_deque: HistSnapshot,
    /// Ring distance thief→victim per matched steal.
    pub steal_distance: HistSnapshot,
    /// Realized suspend→resume wall time per suspension (ns).
    pub suspend_wait: HistSnapshot,
    /// The critical path and its attribution.
    pub critical: CriticalPath,
}

/// One matched steal: provenance of a migrated continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEdge {
    /// The stealing worker.
    pub thief: usize,
    /// The worker whose deque was robbed.
    pub victim: usize,
    /// Frame id of the stolen record (48-bit truncated).
    pub frame: u64,
    /// When the record was pushed (offered).
    pub spawn_ts_ns: u64,
    /// When it was stolen.
    pub steal_ts_ns: u64,
}

impl StealEdge {
    /// Time the record sat in the deque before being stolen.
    pub fn deque_wait_ns(&self) -> u64 {
        self.steal_ts_ns.saturating_sub(self.spawn_ts_ns)
    }

    /// Ring distance between thief and victim among `workers` workers
    /// (steal sweeps walk the worker ring, so distance is modular).
    pub fn distance(&self, workers: usize) -> u64 {
        let d = self.thief.abs_diff(self.victim) as u64;
        if workers == 0 {
            d
        } else {
            d.min(workers as u64 - d)
        }
    }
}

impl CausalProfile {
    /// Reconstructs the profile from drained per-worker event streams.
    pub fn from_workers(workers: &[WorkerTrace]) -> CausalProfile {
        crate::dag::rebuild(workers)
    }

    /// Parallelism T1/T∞ (0 when the span is empty).
    pub fn parallelism(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.t1_ns as f64 / self.span_ns as f64
        }
    }

    /// True when no events were dropped and every steal/pop paired with a
    /// record — the DAG is exact, not best-effort.
    pub fn complete(&self) -> bool {
        self.dropped == 0 && self.unmatched_steals == 0 && self.unmatched_pops == 0
    }

    /// A human-readable profile table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "causal profile: {} workers, wall {}{}",
            self.workers,
            fmt_ns(self.wall_ns),
            if self.complete() {
                String::new()
            } else {
                format!(
                    " (INCOMPLETE: {} dropped, {} unmatched steals, {} unmatched pops)",
                    self.dropped, self.unmatched_steals, self.unmatched_pops
                )
            },
        );
        let _ = writeln!(out, "  work T1          {}", fmt_ns(self.t1_ns));
        let _ = writeln!(out, "  span T∞          {}", fmt_ns(self.span_ns));
        let _ = writeln!(out, "  parallelism      {:.2}", self.parallelism());
        let _ = writeln!(
            out,
            "  spawns {} · fast-pops {} · own-takes {} · joins {} · suspensions {}",
            self.spawns, self.fast_pops, self.own_takes, self.joins, self.suspensions
        );
        let _ = writeln!(
            out,
            "  steal edges      {} ({} matched, {} unmatched)",
            self.steals, self.matched_steals, self.unmatched_steals
        );
        for (name, h) in [
            ("time-in-deque", &self.time_in_deque),
            ("suspend wait", &self.suspend_wait),
        ] {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  {:<16} n={} mean={} p50≤{} p99≤{} max={}",
                    name,
                    h.count,
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.quantile_upper_bound(0.5)),
                    fmt_ns(h.quantile_upper_bound(0.99)),
                    fmt_ns(h.max),
                );
            }
        }
        if self.steal_distance.count > 0 {
            let _ = writeln!(
                out,
                "  steal distance   mean={:.1} max={}",
                self.steal_distance.mean(),
                self.steal_distance.max,
            );
        }
        let _ = writeln!(
            out,
            "  critical path    {} segments, {} steal edges, deque-wait {}, suspend-wait {}",
            self.critical.segments,
            self.critical.steal_edges,
            fmt_ns(self.critical.deque_wait_ns),
            fmt_ns(self.critical.suspend_wait_ns),
        );
        for (phase, ns) in &self.critical.phases {
            let pct = if self.span_ns > 0 {
                *ns as f64 * 100.0 / self.span_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "    {:<14} {:>10}  {:5.1}%", phase, fmt_ns(*ns), pct);
        }
        out
    }

    /// The profile as a JSON value (not yet enveloped; callers wrap it).
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        let num = |v: u64| Json::Num(v as f64);
        root.insert("workers".into(), num(self.workers as u64));
        root.insert("t1_ns".into(), num(self.t1_ns));
        root.insert("t_inf_ns".into(), num(self.span_ns));
        root.insert("parallelism".into(), Json::Num(self.parallelism()));
        root.insert("wall_ns".into(), num(self.wall_ns));
        root.insert("complete".into(), Json::Bool(self.complete()));
        let mut counts = BTreeMap::new();
        for (key, v) in [
            ("spawns", self.spawns),
            ("steals", self.steals),
            ("matched_steals", self.matched_steals),
            ("unmatched_steals", self.unmatched_steals),
            ("fast_pops", self.fast_pops),
            ("own_takes", self.own_takes),
            ("unmatched_pops", self.unmatched_pops),
            ("frame_mismatches", self.frame_mismatches),
            ("joins", self.joins),
            ("suspensions", self.suspensions),
            ("roots", self.roots),
            ("dropped", self.dropped),
        ] {
            counts.insert(key.to_string(), num(v));
        }
        root.insert("counts".into(), Json::Obj(counts));
        for (key, h) in [
            ("time_in_deque_ns", &self.time_in_deque),
            ("steal_distance", &self.steal_distance),
            ("suspend_wait_ns", &self.suspend_wait),
        ] {
            let mut obj = BTreeMap::new();
            obj.insert("count".into(), num(h.count));
            obj.insert("mean".into(), Json::Num(h.mean()));
            obj.insert("p50_ub".into(), num(h.quantile_upper_bound(0.5)));
            obj.insert("p99_ub".into(), num(h.quantile_upper_bound(0.99)));
            obj.insert("max".into(), num(h.max));
            root.insert(key.to_string(), Json::Obj(obj));
        }
        let mut crit = BTreeMap::new();
        crit.insert("span_ns".into(), num(self.critical.span_ns));
        crit.insert("segments".into(), num(self.critical.segments));
        crit.insert("steal_edges".into(), num(self.critical.steal_edges));
        crit.insert("deque_wait_ns".into(), num(self.critical.deque_wait_ns));
        crit.insert("suspend_wait_ns".into(), num(self.critical.suspend_wait_ns));
        let mut phases = BTreeMap::new();
        for (phase, ns) in &self.critical.phases {
            phases.insert(phase.to_string(), num(*ns));
        }
        crit.insert("phases_ns".into(), Json::Obj(phases));
        root.insert("critical_path".into(), Json::Obj(crit));
        Json::Obj(root)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathval_add_and_fold() {
        let mut a = PathVal::default();
        a.add(10, EventKind::Spawn);
        a.add(0, EventKind::Join); // zero segments are not counted
        a.add(5, EventKind::Join);
        assert_eq!(a.len, 15);
        assert_eq!(a.segments, 2);
        assert_eq!(a.by_kind[EventKind::Spawn as usize], 10);
        let mut b = PathVal::default();
        b.add(12, EventKind::Steal);
        b.fold_max(&a);
        assert_eq!(b.len, 15, "longer path wins");
        assert_eq!(b.by_kind[EventKind::Spawn as usize], 10);
        a.fold_max(&b);
        assert_eq!(a.len, 15, "equal path keeps self");
    }

    #[test]
    fn critical_path_phases_sorted() {
        let mut p = PathVal::default();
        p.add(5, EventKind::Spawn);
        p.add(20, EventKind::Join);
        let crit = CriticalPath::from(p);
        assert_eq!(crit.span_ns, 25);
        assert_eq!(crit.phases[0], ("join", 20));
        assert_eq!(crit.phases[1], ("spawn", 5));
    }

    #[test]
    fn steal_edge_distance_is_modular() {
        let e = StealEdge {
            thief: 7,
            victim: 0,
            frame: 1,
            spawn_ts_ns: 10,
            steal_ts_ns: 25,
        };
        assert_eq!(e.deque_wait_ns(), 15);
        assert_eq!(e.distance(8), 1, "ring distance wraps");
        assert_eq!(e.distance(16), 7);
    }

    #[test]
    fn parallelism_guards_zero_span() {
        let p = CausalProfile::default();
        assert_eq!(p.parallelism(), 0.0);
        assert!(p.complete());
    }
}
