//! Observability for the Nowa runtime (IPDPS 2021 reproduction).
//!
//! The runtime's claims are all about scheduler behaviour — steal rates,
//! fast-path frequency, suspension latency. This crate records that
//! behaviour without perturbing it:
//!
//! * [`EventRing`] — one bounded SPSC ring per worker holding fixed-size
//!   timestamped [`Event`]s. The producer (the worker) is wait-free and
//!   never blocks: on overflow the event is dropped and counted.
//! * [`Hist64`] — fixed 64-bucket log2 histograms for latencies (steal to
//!   first poll, suspend to resume, idle-spin duration) and deque
//!   occupancy. Recording is one relaxed `fetch_add`.
//! * [`TraceBuffer`] — the per-worker bundle of ring + histograms, cache-
//!   line padded so workers never share a line.
//! * [`TraceReport`] — the merged view across workers, with three
//!   exporters: a human-readable summary table, JSON, and Chrome
//!   `trace_event` JSON (one track per worker) loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! The runtime integrates this behind its `trace` cargo feature; with the
//! feature off nothing here is compiled into the hot path.

#![warn(missing_docs)]

mod buffer;
mod clock;
mod event;
mod hist;
pub mod json;
mod report;
mod ring;

pub use buffer::{frame_id, TraceBuffer, OCCUPANCY_SHIFT};
pub use clock::now_ns;
pub use event::{Event, EventKind, ARG_MASK};
pub use hist::{Hist64, HistSnapshot};
pub use report::{TraceReport, WorkerTrace};
pub use ring::EventRing;

/// Default per-worker event-ring capacity (events). Must be a power of two.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;
