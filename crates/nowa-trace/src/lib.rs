//! Observability for the Nowa runtime (IPDPS 2021 reproduction).
//!
//! The runtime's claims are all about scheduler behaviour — steal rates,
//! fast-path frequency, suspension latency. This crate records that
//! behaviour without perturbing it:
//!
//! * [`EventRing`] — one bounded SPSC ring per worker holding fixed-size
//!   timestamped [`Event`]s. The producer (the worker) is wait-free and
//!   never blocks: on overflow the event is dropped and counted.
//! * [`Hist64`] — fixed 64-bucket log2 histograms for latencies (steal to
//!   first poll, suspend to resume, idle-spin duration) and deque
//!   occupancy. Recording is one relaxed `fetch_add`.
//! * [`TraceBuffer`] — the per-worker bundle of ring + histograms, cache-
//!   line padded so workers never share a line.
//! * [`TraceReport`] — the merged view across workers, with three
//!   exporters: a human-readable summary table, JSON, and Chrome
//!   `trace_event` JSON (one track per worker) loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`CausalProfile`] — the analysis half: events carry causal identity
//!   (frame ids, steal provenance), so a post-run pass replays the
//!   per-worker deques, rebuilds the fork/join DAG, and computes work T1,
//!   span T∞, parallelism, steal-edge statistics and the critical path.
//! * [`FlightRing`] — a bounded overwrite-oldest ring (no exporter
//!   needed) holding the last moments of scheduler history for
//!   post-mortem dumps on panic, stall, or guard-page fault.
//! * [`MetricsRegistry`] — a pull-based metrics surface with Prometheus
//!   text and JSON encoders, fed from the runtime's stats counters.
//!
//! The runtime integrates this behind its `trace` cargo feature; with the
//! feature off nothing here is compiled into the hot path.

#![warn(missing_docs)]

mod buffer;
mod clock;
mod critical;
mod dag;
mod event;
pub mod flight;
mod hist;
pub mod json;
mod metrics;
mod report;
mod ring;

pub use buffer::{frame_id, TraceBuffer, OCCUPANCY_SHIFT};
pub use clock::now_ns;
pub use critical::{CausalProfile, CriticalPath, StealEdge};
pub use event::{
    pack_steal_arg, steal_frame, steal_victim, Event, EventKind, ARG_MASK, STEAL_FRAME_BITS,
};
pub use flight::FlightRing;
pub use hist::{Hist64, HistSnapshot};
pub use metrics::{Metric, MetricKind, MetricsRegistry};
pub use report::{TraceReport, WorkerTrace};
pub use ring::EventRing;

/// Default per-worker event-ring capacity (events). Must be a power of two.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;
