//! The per-worker trace state.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::clock::now_ns;
use crate::event::{Event, EventKind};
use crate::hist::Hist64;
use crate::ring::EventRing;

/// How often deque occupancy is sampled: every `2^OCCUPANCY_SHIFT`-th spawn.
pub const OCCUPANCY_SHIFT: u32 = 6;

/// How often hot-path events take a fresh clock reading: every
/// `2^STAMP_SHIFT`-th hot event reads the monotonic clock; the ones in
/// between reuse the last reading. A clock read costs tens of
/// nanoseconds — more than a fine-grained spawn itself — so stamping
/// every event would double the runtime of spawn-bound kernels (the
/// `trace-overhead` CI gate enforces the budget). Staleness is bounded
/// by `2^STAMP_SHIFT` *hot* events: rare-path events (steals, syncs,
/// idle/park transitions) always stamp precisely and refresh the shared
/// reading, so timestamps stay monotonic per worker and dense event
/// bursts — the only periods that reuse stamps — are exactly the periods
/// with no scheduling gaps to mis-measure.
pub const STAMP_SHIFT: u32 = 6;

/// Everything one worker records: its event ring, its latency histograms,
/// and the scratch cells for in-flight measurements. Cache-line padded so
/// two workers' buffers never share a line.
///
/// All methods are wait-free. Only the owning worker calls the recording
/// methods; the report collector reads concurrently via [`EventRing`]'s
/// consumer side and [`Hist64::snapshot`]. The scratch cells are atomics
/// only so the type stays `Sync` — they are worker-private.
#[repr(align(128))]
pub struct TraceBuffer {
    /// The event ring.
    pub ring: EventRing,
    /// Steal-to-first-poll latency: from a successful steal in the
    /// work-finding loop to the stolen continuation re-establishing its
    /// stack invariant.
    pub steal_latency: Hist64,
    /// Idle-spin duration: from the first failed steal sweep to the next
    /// piece of work.
    pub idle_spin: Hist64,
    /// Owner-deque occupancy, sampled every
    /// `2^`[`OCCUPANCY_SHIFT`]`-th` spawn.
    pub occupancy: Hist64,
    /// Time spent inside futex parks (idle engine).
    pub parked: Hist64,
    /// Timestamp of the pending successful steal (0 = none).
    pending_steal_ns: AtomicU64,
    /// Timestamp idleness began (0 = currently busy).
    idle_since_ns: AtomicU64,
    /// Timestamp the current park began (0 = not parked).
    park_since_ns: AtomicU64,
    /// Spawns seen, for occupancy sampling.
    spawn_tick: AtomicU64,
    /// Hot events seen, for amortized stamping ([`STAMP_SHIFT`]).
    stamp_tick: AtomicU64,
    /// The last monotonic clock reading taken by this worker.
    stamp_ns: AtomicU64,
}

impl TraceBuffer {
    /// A buffer whose ring holds `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> TraceBuffer {
        // Pin the trace epoch no later than buffer construction so the
        // first event's timestamp is relative to runtime startup.
        let _ = now_ns();
        TraceBuffer {
            ring: EventRing::new(ring_capacity),
            steal_latency: Hist64::default(),
            idle_spin: Hist64::default(),
            occupancy: Hist64::default(),
            parked: Hist64::default(),
            pending_steal_ns: AtomicU64::new(0),
            idle_since_ns: AtomicU64::new(0),
            park_since_ns: AtomicU64::new(0),
            spawn_tick: AtomicU64::new(0),
            stamp_tick: AtomicU64::new(0),
            stamp_ns: AtomicU64::new(0),
        }
    }

    /// Reads the clock and refreshes the shared stamp. Every precise
    /// (rare-path) reading goes through here so subsequent hot events can
    /// never be stamped earlier than a preceding precise event.
    #[inline]
    fn fresh_ts(&self) -> u64 {
        let ts = now_ns();
        self.stamp_ns.store(ts, Ordering::Relaxed);
        ts
    }

    /// Amortized timestamp for hot-path events: a fresh reading every
    /// `2^`[`STAMP_SHIFT`]`-th` call, the last reading otherwise.
    #[inline]
    fn hot_ts(&self) -> u64 {
        let tick = self.stamp_tick.load(Ordering::Relaxed);
        self.stamp_tick.store(tick + 1, Ordering::Relaxed);
        if tick & ((1 << STAMP_SHIFT) - 1) == 0 {
            self.fresh_ts()
        } else {
            self.stamp_ns.load(Ordering::Relaxed)
        }
    }

    /// Records a rare-path event stamped with a fresh clock reading.
    #[inline]
    pub fn event(&self, kind: EventKind, arg: u64) {
        self.ring.push(Event::new(self.fresh_ts(), kind, arg));
    }

    /// Records a hot-path event with an amortized stamp (`STAMP_SHIFT`).
    #[inline]
    pub fn hot_event(&self, kind: EventKind, arg: u64) {
        self.ring.push(Event::new(self.hot_ts(), kind, arg));
    }

    /// Records an offered spawn of `frame`; every
    /// `2^`[`OCCUPANCY_SHIFT`]`-th` call also samples `deque_len` into the
    /// occupancy histogram (and an [`EventKind::Occupancy`] event), where
    /// `deque_len` is provided lazily so the common case never touches the
    /// deque.
    #[inline]
    pub fn spawn(&self, frame: u64, deque_len: impl FnOnce() -> u64) {
        let tick = self.spawn_tick.load(Ordering::Relaxed);
        self.spawn_tick.store(tick + 1, Ordering::Relaxed);
        if tick & ((1 << OCCUPANCY_SHIFT) - 1) == 0 {
            let len = deque_len();
            self.occupancy.record(len);
            let ts = self.fresh_ts();
            self.ring.push(Event::new(ts, EventKind::Spawn, frame));
            self.ring.push(Event::new(ts, EventKind::Occupancy, len));
        } else {
            self.hot_event(EventKind::Spawn, frame);
        }
    }

    /// Records a successful steal of `frame`'s record from `victim` and
    /// starts the steal-to-first-poll clock.
    #[inline]
    pub fn steal_success(&self, victim: usize, frame: u64) {
        let ts = self.fresh_ts();
        self.ring.push(Event::new(
            ts,
            EventKind::Steal,
            crate::event::pack_steal_arg(victim, frame),
        ));
        self.pending_steal_ns.store(ts, Ordering::Relaxed);
    }

    /// Stops the steal-to-first-poll clock (called when a resumed
    /// continuation is back on its feet). No-op without a pending steal —
    /// fast-path resumes also pass through the resume site.
    #[inline]
    pub fn resume_finished(&self) {
        let started = self.pending_steal_ns.load(Ordering::Relaxed);
        if started != 0 {
            self.pending_steal_ns.store(0, Ordering::Relaxed);
            self.steal_latency
                .record(self.fresh_ts().saturating_sub(started));
        }
    }

    /// True while inside an idle period (between [`TraceBuffer::
    /// idle_enter`] and [`TraceBuffer::idle_exit`]).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.idle_since_ns.load(Ordering::Relaxed) != 0
    }

    /// Marks the beginning of an idle period (first failed steal sweep).
    /// Idempotent while already idle.
    #[inline]
    pub fn idle_enter(&self) {
        if self.idle_since_ns.load(Ordering::Relaxed) == 0 {
            self.idle_since_ns
                .store(self.fresh_ts().max(1), Ordering::Relaxed);
        }
    }

    /// Marks the end of an idle period: records the spin duration and an
    /// [`EventKind::Idle`] event spanning it. No-op when not idle.
    #[inline]
    pub fn idle_exit(&self) {
        let since = self.idle_since_ns.load(Ordering::Relaxed);
        if since != 0 {
            self.idle_since_ns.store(0, Ordering::Relaxed);
            let dur = self.fresh_ts().saturating_sub(since);
            self.idle_spin.record(dur);
            self.ring.push(Event::new(since, EventKind::Idle, dur));
        }
    }

    /// Marks the beginning of a futex park ([`EventKind::Park`] instant,
    /// parked-time clock started).
    #[inline]
    pub fn park_begin(&self) {
        let ts = self.fresh_ts().max(1);
        self.park_since_ns.store(ts, Ordering::Relaxed);
        self.ring.push(Event::new(ts, EventKind::Park, 0));
    }

    /// Marks the end of a park: records the parked duration and an
    /// [`EventKind::Unpark`] span covering it. No-op without a pending
    /// [`TraceBuffer::park_begin`].
    #[inline]
    pub fn park_end(&self) {
        let since = self.park_since_ns.load(Ordering::Relaxed);
        if since != 0 {
            self.park_since_ns.store(0, Ordering::Relaxed);
            let dur = self.fresh_ts().saturating_sub(since);
            self.parked.record(dur);
            self.ring.push(Event::new(since, EventKind::Unpark, dur));
        }
    }

    /// Records a targeted wake of worker `target` issued by this worker.
    #[inline]
    pub fn wake(&self, target: usize) {
        self.event(EventKind::Wake, target as u64);
    }
}

/// A compact id for a sync frame, derived from its address. Collisions
/// merely mis-pair a suspend/resume in the report; soundness is unaffected.
#[inline]
pub fn frame_id(ptr: *const ()) -> u64 {
    // Frames are ≥ 16-byte aligned; drop the dead bits.
    (ptr as usize as u64) >> 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_samples_occupancy_periodically() {
        let buf = TraceBuffer::new(1 << 10);
        let mut probes = 0u32;
        for _ in 0..(2 << OCCUPANCY_SHIFT) {
            buf.spawn(42, || {
                probes += 1;
                3
            });
        }
        assert_eq!(probes, 2, "one probe per 2^{OCCUPANCY_SHIFT} spawns");
        let occ = buf.occupancy.snapshot();
        assert_eq!(occ.count, 2);
        assert_eq!(occ.max, 3);
    }

    #[test]
    fn steal_latency_requires_pending_steal() {
        let buf = TraceBuffer::new(64);
        buf.resume_finished(); // fast-path resume: no pending steal
        assert_eq!(buf.steal_latency.snapshot().count, 0);
        buf.steal_success(2, 42);
        buf.resume_finished();
        buf.resume_finished(); // second resume must not double-record
        assert_eq!(buf.steal_latency.snapshot().count, 1);
    }

    #[test]
    fn idle_period_recorded_once() {
        let buf = TraceBuffer::new(64);
        buf.idle_exit(); // busy → no-op
        buf.idle_enter();
        buf.idle_enter(); // idempotent
        std::thread::sleep(std::time::Duration::from_millis(1));
        buf.idle_exit();
        let s = buf.idle_spin.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "slept ≥ 1ms, recorded {}", s.max);
        let mut events = Vec::new();
        buf.ring.drain_into(&mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Idle);
        assert_eq!(events[0].arg, s.max);
    }

    #[test]
    fn park_span_recorded_once() {
        let buf = TraceBuffer::new(64);
        buf.park_end(); // not parked → no-op
        assert_eq!(buf.parked.snapshot().count, 0);
        buf.park_begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        buf.park_end();
        buf.park_end(); // must not double-record
        buf.wake(3);
        let s = buf.parked.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "parked ≥ 1ms, recorded {}", s.max);
        let mut events = Vec::new();
        buf.ring.drain_into(&mut events);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Park);
        assert_eq!(events[1].kind, EventKind::Unpark);
        assert_eq!(events[1].arg, s.max);
        assert_eq!(events[1].ts_ns, events[0].ts_ns, "span starts at the park");
        assert_eq!(events[2].kind, EventKind::Wake);
        assert_eq!(events[2].arg, 3);
    }
}
