//! Fork/join DAG reconstruction from causal trace events.
//!
//! Deque-lifecycle events carry frame ids (see [`crate::EventKind`]), so
//! the merged event stream contains enough information to *replay* every
//! worker's deque: `Spawn` pushes a record at the bottom, `FastPop` and
//! `OwnTake` pop the bottom, `Steal` pops the victim's top. Each replayed
//! record carries the path value at its push, which is exactly the state
//! the span recurrence needs when the record is consumed — so one pass in
//! global timestamp order rebuilds the DAG and computes work T1, span T∞
//! and the critical path simultaneously.
//!
//! The replay is drop-tolerant by construction: a pop or steal that finds
//! no record (ring overflow ate the spawn) keeps the current path and is
//! counted in the `unmatched_*` fields instead of failing.
//!
//! Cross-worker timestamp skew is handled explicitly: the victim stamps
//! its `Spawn` event *after* the push is visible to thieves, so a fast
//! thief's `Steal` can carry an earlier timestamp than the matching
//! `Spawn`. A steal that finds no matching record is therefore parked and
//! resolved when the spawn arrives (nanoseconds later in the merged
//! stream); only steals still unresolved at end of stream count as
//! unmatched. Owner-side pops need no such handling — push and pop are
//! stamped by the same thread, so their order is always consistent.

use std::collections::{BTreeMap, VecDeque};

use crate::critical::{CausalProfile, CriticalPath, PathVal, StealEdge};
use crate::event::{steal_frame, steal_victim, EventKind, STEAL_FRAME_BITS};
use crate::hist::HistSnapshot;
use crate::report::WorkerTrace;

/// A deque record in the replay: the pushed continuation's identity and
/// the path value at its push.
struct Pending {
    frame: u64,
    ts_ns: u64,
    path: PathVal,
}

/// Per-worker replay state.
#[derive(Default)]
struct WState {
    /// The span-recurrence path of the strand this worker is running.
    path: PathVal,
    /// Timestamp busy time accumulates from (None before the first event).
    last_busy_ns: Option<u64>,
    /// False between a Join/SyncSuspend and the next take: the worker is
    /// searching for work, so busy time is burden (counted in T1) but not
    /// part of any dependence chain.
    on_strand: bool,
    /// Replayed owner deque.
    deque: VecDeque<Pending>,
}

const FRAME_MASK: u64 = (1 << STEAL_FRAME_BITS) - 1;

fn frames_match(a: u64, b: u64) -> bool {
    a & FRAME_MASK == b & FRAME_MASK
}

/// Replays the merged event streams and reconstructs the causal profile.
///
/// Used via [`CausalProfile::from_workers`].
pub(crate) fn rebuild(workers: &[WorkerTrace]) -> CausalProfile {
    // Merge by (ts, worker, index): per-worker publication order is
    // preserved on timestamp ties, which matters for adjacent events
    // stamped in the same nanosecond (e.g. Join then SyncResume).
    let mut merged: Vec<(u64, usize, usize)> = Vec::new();
    for (w, wt) in workers.iter().enumerate() {
        for (i, ev) in wt.events.iter().enumerate() {
            merged.push((ev.ts_ns, w, i));
        }
    }
    merged.sort_unstable();

    let mut st: Vec<WState> = (0..workers.len()).map(|_| WState::default()).collect();
    // Steals stamped before their spawn (cross-worker clock skew), keyed
    // by (victim, frame): resolved by the next matching Spawn, FIFO.
    let mut early_steals: BTreeMap<(usize, u64), VecDeque<usize>> = BTreeMap::new();
    let mut joins: BTreeMap<u64, PathVal> = BTreeMap::new();
    let mut suspended: BTreeMap<u64, (PathVal, u64)> = BTreeMap::new();
    let mut best = PathVal::default();
    let mut out = CausalProfile {
        workers: workers.len(),
        dropped: workers.iter().map(|w| w.dropped).sum(),
        ..CausalProfile::default()
    };
    let mut time_in_deque = HistSnapshot::default();
    let mut steal_distance = HistSnapshot::default();
    let mut suspend_wait = HistSnapshot::default();
    let (mut first_ts, mut last_ts) = (u64::MAX, 0u64);

    for &(ts, w, i) in &merged {
        let ev = &workers[w].events[i];
        first_ts = first_ts.min(ts);
        last_ts = last_ts.max(ts);
        match ev.kind {
            // Search/idle-engine instants: stats only, no clock movement
            // (their time folds into the surrounding segment or idle span).
            // Cancellation instants likewise — a cancelled strand's
            // structural events (joins, resumes) still drive the DAG.
            EventKind::StealEmpty
            | EventKind::StealRetry
            | EventKind::Park
            | EventKind::Unpark
            | EventKind::Wake
            | EventKind::Occupancy
            | EventKind::Cancel
            | EventKind::Abort
            // Async-surface instants: the serving layer's parks, wakes,
            // reactor polls and timer fires are engine events, not strand
            // structure — the fork/join DAG flows through the sync events
            // the parked continuation emits when it runs.
            | EventKind::AsyncPark
            | EventKind::AsyncWake
            | EventKind::ReactorPoll
            | EventKind::TimerFire => continue,
            // Idle spans are backdated to the period start and carry the
            // duration: account busy time up to the start, then skip the
            // span (it covers any parks inside it).
            EventKind::Idle => {
                let ws = &mut st[w];
                if let Some(last) = ws.last_busy_ns {
                    let gap = ts.saturating_sub(last);
                    out.t1_ns += gap;
                    if ws.on_strand {
                        ws.path.add(gap, EventKind::Idle);
                    }
                }
                let end = ts.saturating_add(ev.arg);
                ws.last_busy_ns = Some(ws.last_busy_ns.map_or(end, |l| l.max(end)));
                continue;
            }
            _ => {}
        }

        // Busy time since the previous event on this worker belongs to the
        // strand that just ran (T1 always; the path only while on-strand).
        let ws = &mut st[w];
        if let Some(last) = ws.last_busy_ns {
            let gap = ts.saturating_sub(last);
            out.t1_ns += gap;
            if ws.on_strand {
                ws.path.add(gap, ev.kind);
            }
        }
        ws.last_busy_ns = Some(ws.last_busy_ns.map_or(ts, |l| l.max(ts)));

        match ev.kind {
            EventKind::Spawn => {
                out.spawns += 1;
                ws.on_strand = true;
                let key = (w, ev.arg & FRAME_MASK);
                let thief = early_steals.get_mut(&key).and_then(VecDeque::pop_front);
                match thief {
                    // A thief already consumed this record (its Steal was
                    // stamped first): resolve the edge now instead of
                    // pushing a record nobody will take. The skew window is
                    // nanoseconds, so the wait reads as ~0 and the thief's
                    // path is corrected by folding in the spawn-point path.
                    Some(thief) => {
                        if early_steals.get(&key).is_some_and(VecDeque::is_empty) {
                            early_steals.remove(&key);
                        }
                        out.matched_steals += 1;
                        time_in_deque.record(0);
                        let edge = StealEdge {
                            thief,
                            victim: w,
                            frame: key.1,
                            spawn_ts_ns: ts,
                            steal_ts_ns: ts,
                        };
                        steal_distance.record(edge.distance(workers.len()));
                        out.steal_edges.push(edge);
                        let mut stolen_path = st[w].path.clone();
                        stolen_path.steal_edges += 1;
                        if thief != w {
                            st[thief].path.fold_max(&stolen_path);
                        }
                    }
                    None => {
                        let ws = &mut st[w];
                        ws.deque.push_back(Pending {
                            frame: ev.arg,
                            ts_ns: ts,
                            path: ws.path.clone(),
                        });
                    }
                }
            }
            EventKind::FastPop => {
                out.fast_pops += 1;
                // The child strand ends here; fold it into the join state
                // of the popped record's frame, then continue as the
                // continuation from its spawn point.
                joins.entry(ev.arg).or_default().fold_max(&ws.path);
                match ws.deque.pop_back() {
                    Some(p) => {
                        if !frames_match(p.frame, ev.arg) {
                            out.frame_mismatches += 1;
                        }
                        ws.path = p.path;
                    }
                    None => out.unmatched_pops += 1,
                }
                ws.on_strand = true;
            }
            EventKind::OwnTake => {
                out.own_takes += 1;
                match ws.deque.pop_back() {
                    Some(p) => {
                        if !frames_match(p.frame, ev.arg) {
                            out.frame_mismatches += 1;
                        }
                        ws.path = p.path;
                    }
                    None => out.unmatched_pops += 1,
                }
                ws.on_strand = true;
            }
            EventKind::Steal => {
                out.steals += 1;
                let victim = steal_victim(ev.arg);
                let frame = steal_frame(ev.arg);
                // Steals drain the top, but two thieves' Steal events can be
                // stamped out of order relative to each other: take the
                // frontmost record with the *matching* frame, tolerating
                // positional skew.
                let stolen = st.get_mut(victim).and_then(|v| {
                    v.deque
                        .iter()
                        .position(|p| frames_match(p.frame, frame))
                        .and_then(|idx| v.deque.remove(idx))
                });
                let ws = &mut st[w];
                match stolen {
                    Some(p) => {
                        out.matched_steals += 1;
                        let wait = ts.saturating_sub(p.ts_ns);
                        time_in_deque.record(wait);
                        let edge = StealEdge {
                            thief: w,
                            victim,
                            frame,
                            spawn_ts_ns: p.ts_ns,
                            steal_ts_ns: ts,
                        };
                        steal_distance.record(edge.distance(workers.len()));
                        out.steal_edges.push(edge);
                        ws.path = p.path;
                        ws.path.steal_edges += 1;
                        ws.path.deque_wait_ns += wait;
                    }
                    None => {
                        // Either this steal's Spawn is stamped a few ns
                        // later (resolved then) or the spawn was dropped
                        // (counted as unmatched at end of stream).
                        early_steals
                            .entry((victim, frame))
                            .or_default()
                            .push_back(w);
                        ws.path = PathVal::default();
                    }
                }
                ws.on_strand = true;
            }
            EventKind::Join => {
                out.joins += 1;
                joins.entry(ev.arg).or_default().fold_max(&ws.path);
                ws.on_strand = false;
            }
            EventKind::SyncInline => {
                let j = joins.remove(&ev.arg).unwrap_or_default();
                ws.path.fold_max(&j);
                ws.on_strand = true;
            }
            EventKind::SyncSuspend => {
                out.suspensions += 1;
                suspended.insert(ev.arg, (ws.path.clone(), ts));
                ws.on_strand = false;
            }
            EventKind::SyncResume => {
                // The resuming worker just emitted the final Join for this
                // frame, so its path is already folded into the join state;
                // the continuation resumes as max(suspended side, joins).
                let (sp, since) = suspended
                    .remove(&ev.arg)
                    .unwrap_or((PathVal::default(), ts));
                let j = joins.remove(&ev.arg).unwrap_or_default();
                suspend_wait.record(ts.saturating_sub(since));
                let mut resumed = sp;
                resumed.fold_max(&j);
                resumed.suspend_wait_ns += ts.saturating_sub(since);
                ws.path = resumed;
                ws.on_strand = true;
            }
            EventKind::Root => {
                out.roots += 1;
                ws.path = PathVal::default();
                ws.on_strand = true;
            }
            _ => unreachable!("instant kinds handled above"),
        }
        let ws = &st[w];
        if ws.on_strand {
            best.fold_max(&ws.path);
        }
    }

    // Early steals never resolved by a spawn: the spawn was genuinely
    // lost (ring overflow), not skewed.
    out.unmatched_steals += early_steals.values().map(|q| q.len() as u64).sum::<u64>();

    // Strands parked in join/suspend state at stream end (e.g. a dropped
    // resume) still bound the span.
    for j in joins.values() {
        best.fold_max(j);
    }
    for (sp, _) in suspended.values() {
        best.fold_max(sp);
    }

    out.wall_ns = last_ts.saturating_sub(first_ts.min(last_ts));
    out.span_ns = best.len;
    out.time_in_deque = time_in_deque;
    out.steal_distance = steal_distance;
    out.suspend_wait = suspend_wait;
    out.critical = CriticalPath::from(best);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{pack_steal_arg, Event};

    fn wt(index: usize, events: Vec<Event>) -> WorkerTrace {
        WorkerTrace {
            index,
            events,
            dropped: 0,
        }
    }

    fn ev(ts: u64, kind: EventKind, arg: u64) -> Event {
        Event::new(ts, kind, arg)
    }

    /// Serial run: root does 10ns, spawns child (20ns), fast-pops the
    /// continuation, does 5ns, syncs inline.
    /// Work = 35; span = max(child 10+20, continuation 10+5) = 30.
    #[test]
    fn serial_fastpop_roundtrip() {
        let f = 99;
        let events = vec![
            ev(100, EventKind::Root, 0),
            ev(110, EventKind::Spawn, f),      // 10ns of root work
            ev(130, EventKind::FastPop, f),    // child ran 20ns
            ev(135, EventKind::SyncInline, f), // continuation ran 5ns
        ];
        let p = CausalProfile::from_workers(&[wt(0, events)]);
        assert_eq!(p.t1_ns, 35);
        assert_eq!(p.span_ns, 30, "child path dominates the inline sync");
        assert_eq!(p.fast_pops, 1);
        assert_eq!(p.spawns, 1);
        assert!(p.complete());
        assert!(p.steal_edges.is_empty());
    }

    /// Same DAG but the continuation is stolen: worker 1 takes the
    /// continuation, worker 0 finishes the child and joins; worker 1
    /// suspends at the sync and worker 0's join resumes it.
    #[test]
    fn stolen_continuation_roundtrip() {
        let f = 7;
        let w0 = vec![
            ev(100, EventKind::Root, 0),
            ev(110, EventKind::Spawn, f),      // 10ns before the spawn
            ev(140, EventKind::Join, f),       // child ran 30ns, cont stolen
            ev(140, EventKind::SyncResume, f), // last joiner resumes
            ev(150, EventKind::SyncInline, f), // next region: 10ns then sync
        ];
        let w1 = vec![
            ev(111, EventKind::Steal, pack_steal_arg(0, f)),
            ev(116, EventKind::SyncSuspend, f), // continuation ran 5ns
        ];
        let p = CausalProfile::from_workers(&[wt(0, w0), wt(1, w1)]);
        // T1: worker 0 busy 100→140 and 140→150; worker 1 busy 111→116.
        assert_eq!(p.t1_ns, 50 + 5);
        // Span: child path 10+30=40 beats continuation 10+5=15; the
        // resumed strand adds 10 → 50.
        assert_eq!(p.span_ns, 50);
        assert_eq!(p.matched_steals, 1);
        assert_eq!(p.unmatched_steals, 0);
        assert_eq!(p.suspensions, 1);
        assert!(p.complete());
        let edge = p.steal_edges[0];
        assert_eq!((edge.thief, edge.victim), (1, 0));
        assert_eq!(edge.deque_wait_ns(), 1);
        assert_eq!(p.suspend_wait.count, 1);
        assert_eq!(p.suspend_wait.max, 24, "suspended 116→140");
        assert_eq!(p.critical.steal_edges, 0, "child side won the join");
        assert_eq!(p.critical.suspend_wait_ns, 24);
    }

    /// Idle spans subtract from T1 and break the busy clock.
    #[test]
    fn idle_spans_excluded_from_work() {
        let f = 3;
        let events = vec![
            ev(100, EventKind::Root, 0),
            ev(110, EventKind::Spawn, f),
            ev(120, EventKind::Join, f),    // strand ends
            ev(120, EventKind::Idle, 70),   // idle 120→190
            ev(200, EventKind::OwnTake, f), // 10ns of post-idle search burden
            ev(230, EventKind::SyncInline, f),
        ];
        let p = CausalProfile::from_workers(&[wt(0, events)]);
        // Busy: 100→120 (20) + 190→200 burden (10) + 200→230 (30).
        assert_eq!(p.t1_ns, 60);
        // Path: root 10 + child 10 joined; continuation resumes from the
        // spawn point (path 10) + 30 = 40; search burden is not on it.
        assert_eq!(p.span_ns, 40);
        assert_eq!(p.own_takes, 1);
        assert!(p.complete());
    }

    /// A steal whose spawn record was dropped is counted, not fatal.
    #[test]
    fn unmatched_steal_is_best_effort() {
        let w0 = vec![ev(100, EventKind::Root, 0)];
        let w1 = vec![ev(150, EventKind::Steal, pack_steal_arg(0, 5))];
        let p = CausalProfile::from_workers(&[wt(0, w0), wt(1, w1)]);
        assert_eq!(p.unmatched_steals, 1);
        assert_eq!(p.matched_steals, 0);
        assert!(!p.complete());
    }

    /// Steals consume the top (FIFO) while pops consume the bottom (LIFO)
    /// of the replayed deque.
    #[test]
    fn replay_respects_deque_ends() {
        let (f1, f2) = (11, 22);
        let w0 = vec![
            ev(100, EventKind::Root, 0),
            ev(110, EventKind::Spawn, f1),
            ev(120, EventKind::Spawn, f2),
            ev(130, EventKind::FastPop, f2), // bottom: the younger record
        ];
        let w1 = vec![ev(125, EventKind::Steal, pack_steal_arg(0, f1))];
        let p = CausalProfile::from_workers(&[wt(0, w0), wt(1, w1)]);
        assert_eq!(p.matched_steals, 1);
        assert_eq!(p.frame_mismatches, 0, "steal got f1 (top), pop got f2");
        assert_eq!(p.steal_edges[0].frame, f1);
    }
}
