//! A bounded wait-free SPSC event ring.
//!
//! One producer (the owning worker) and one consumer (the report
//! collector). The producer never blocks and never spins: when the ring is
//! full the event is *dropped* and counted — observability must never
//! introduce a scheduling dependency into the runtime it observes.
//!
//! Publication protocol: the producer writes the slot's two words with
//! relaxed stores, then advances `published` with a release store. The
//! consumer loads `published` with acquire before reading slots, and
//! advances `consumed` with a release store after; the producer's acquire
//! load of `consumed` keeps it from overwriting unread slots. All slot
//! words are atomics, so even a misbehaving reader could not cause a data
//! race.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::event::Event;

/// Bounded SPSC ring of [`Event`]s with a drop-newest overflow policy.
#[repr(align(128))]
pub struct EventRing {
    /// `2 * capacity` words: slot `i` occupies words `2i` (timestamp) and
    /// `2i + 1` (packed kind + arg).
    slots: Box<[AtomicU64]>,
    /// Power-of-two capacity in events.
    capacity: usize,
    /// Events ever published (monotonic; producer-owned).
    published: AtomicU64,
    /// Events ever consumed (monotonic; consumer-owned).
    consumed: AtomicU64,
    /// Events dropped because the ring was full.
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity * 2).map(|_| AtomicU64::new(0)).collect();
        EventRing {
            slots,
            capacity,
            published: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped so far due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        let p = self.published.load(Ordering::Acquire);
        let c = self.consumed.load(Ordering::Acquire);
        (p - c) as usize
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: records `ev`, or drops it (returning `false`) when
    /// the ring is full. Wait-free; must only be called by the single
    /// producer.
    #[inline]
    pub fn push(&self, ev: Event) -> bool {
        let p = self.published.load(Ordering::Relaxed);
        let c = self.consumed.load(Ordering::Acquire);
        if p.wrapping_sub(c) >= self.capacity as u64 {
            // Producer-owned counter: a load + store is a plain pair of
            // moves, where `fetch_add` would be a locked RMW — the drop
            // path is the *steady state* of an overflowing ring and must
            // stay as cheap as the push path (R5 hot-path).
            let d = self.dropped.load(Ordering::Relaxed);
            self.dropped.store(d + 1, Ordering::Relaxed);
            return false;
        }
        let i = (p as usize & (self.capacity - 1)) * 2;
        // SAFETY: `capacity` is a power of two and `slots.len() == 2 *
        // capacity`, so `i + 1 <= 2 * capacity - 1` is always in bounds;
        // the checked indexing cost is real on this path (R5 hot-path).
        unsafe {
            self.slots
                .get_unchecked(i)
                .store(ev.ts_ns, Ordering::Relaxed);
            self.slots
                .get_unchecked(i + 1)
                .store(ev.pack_word(), Ordering::Relaxed);
        }
        self.published.store(p + 1, Ordering::Release);
        true
    }

    /// Consumer side: moves all buffered events into `out` (in publication
    /// order). Must only be called by the single consumer; safe to call
    /// while the producer is pushing.
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        let p = self.published.load(Ordering::Acquire);
        let mut c = self.consumed.load(Ordering::Relaxed);
        out.reserve((p - c) as usize);
        while c < p {
            let i = (c as usize & (self.capacity - 1)) * 2;
            let ts = self.slots[i].load(Ordering::Relaxed);
            let packed = self.slots[i + 1].load(Ordering::Relaxed);
            // Unknown kinds cannot be produced by `push`; skip defensively.
            if let Some(ev) = Event::from_words(ts, packed) {
                out.push(ev);
            }
            c += 1;
        }
        self.consumed.store(c, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event::new(ts, EventKind::Spawn, ts)
    }

    #[test]
    fn fifo_order() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn wraps_across_drains() {
        let ring = EventRing::new(4);
        let mut out = Vec::new();
        let mut next = 0u64;
        for _ in 0..10 {
            for _ in 0..3 {
                assert!(ring.push(ev(next)));
                next += 1;
            }
            ring.drain_into(&mut out);
        }
        assert_eq!(out.len(), 30);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64, "order survives wrap-around");
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = EventRing::new(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        // Full: these must be dropped, not overwrite old events.
        assert!(!ring.push(ev(100)));
        assert!(!ring.push(ev(101)));
        assert_eq!(ring.dropped(), 2);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        // Space freed: pushes succeed again.
        assert!(ring.push(ev(200)));
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 2);
        assert_eq!(EventRing::new(5).capacity(), 8);
        assert_eq!(EventRing::new(16).capacity(), 16);
    }

    #[test]
    fn concurrent_producer_consumer() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(64));
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..100_000u64 {
                    if ring.push(ev(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut out = Vec::new();
        while !producer.is_finished() {
            ring.drain_into(&mut out);
        }
        let pushed = producer.join().unwrap();
        ring.drain_into(&mut out);
        assert_eq!(out.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), 100_000);
        // Drained events are strictly increasing (no slot ever torn or
        // delivered twice).
        for w in out.windows(2) {
            assert!(w[0].ts_ns < w[1].ts_ns);
        }
    }
}
