//! A minimal JSON value type, writer, and parser.
//!
//! The container this repo builds in has no registry access, so exporters
//! cannot lean on serde; the subset needed to emit and (for validation and
//! tests) re-read trace files is small enough to carry here. Numbers are
//! `f64` — trace timestamps in microseconds and counters fit losslessly
//! for any realistic trace (< 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted by key; trace exports never rely on key order).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Writes a JSON number: integers without a fraction, everything else via
/// shortest-roundtrip float formatting.
pub(crate) fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null-ish zero rather than emit
        // invalid output.
        out.push('0');
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a quoted, escaped JSON string.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for trace output;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_string(), Json::Str("steal \"fast\"\n".into()));
        obj.insert("ts".to_string(), Json::Num(12.345));
        obj.insert("count".to_string(), Json::Num(42.0));
        obj.insert("flag".to_string(), Json::Bool(true));
        obj.insert("none".to_string(), Json::Null);
        let v = Json::Arr(vec![Json::Obj(obj), Json::Arr(vec![])]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(12.5).render(), "12.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5, \"x\\u0041\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
