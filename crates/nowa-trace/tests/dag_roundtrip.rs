//! Property test: DAG reconstruction round-trips against simulator ground
//! truth.
//!
//! `nowa-sim`'s [`SimDag`] computes work T1 and span T∞ analytically by
//! the standard work/span recurrence. This suite generates random
//! fork/join programs, *executes* them with two synthetic schedulers that
//! emit exactly the causal event streams the real runtime would —
//!
//! * **serial**: one worker, every continuation reclaimed by fast-path pop
//!   (`Spawn` → child → `FastPop` → … → `SyncInline`);
//! * **always-steal**: every offered continuation is stolen by a fresh
//!   virtual worker at the spawn instant, children emit `Join` when they
//!   end, and syncs suspend/resume exactly when the schedule demands it —
//!
//! and asserts that [`CausalProfile`] reconstructs T1 and T∞ **exactly**.
//! Both schedules realise the same DAG, so both must agree with the
//! analytic values: the serial one exercises the deque-rewind half of the
//! replay, the always-steal one the steal-edge/suspension half.

use nowa_sim::{DagBuilder, Item, SimDag};
use nowa_trace::{pack_steal_arg, CausalProfile, Event, EventKind, WorkerTrace};
use proptest::prelude::*;

/// Generator shape: a task body, recursively containing child bodies.
#[derive(Debug, Clone)]
enum Shape {
    Work(u64),
    Sync,
    Spawn(Vec<Shape>),
    Call(Vec<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Vec<Shape>> {
    let leaf = prop_oneof![
        3 => (0u64..100).prop_map(Shape::Work),
        1 => Just(Shape::Sync),
    ];
    let node = leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            3 => (0u64..100).prop_map(Shape::Work),
            1 => Just(Shape::Sync),
            2 => prop::collection::vec(inner.clone(), 0..4).prop_map(Shape::Spawn),
            1 => prop::collection::vec(inner, 0..4).prop_map(Shape::Call),
        ]
    });
    prop::collection::vec(node, 0..6)
}

fn build_into(b: &mut DagBuilder, task: usize, prog: &[Shape]) {
    for s in prog {
        match s {
            Shape::Work(w) => b.work(task, *w),
            Shape::Sync => b.sync(task),
            Shape::Spawn(p) => {
                let c = b.spawn(task);
                build_into(b, c, p);
            }
            Shape::Call(p) => {
                let c = b.call(task);
                build_into(b, c, p);
            }
        }
    }
}

fn build_dag(prog: &[Shape]) -> SimDag {
    let mut b = DagBuilder::new();
    build_into(&mut b, 0, prog);
    b.build()
}

/// Frame ids are task indices offset by one (0 is never a valid frame).
fn frame_of(task: usize) -> u64 {
    task as u64 + 1
}

struct Emitter {
    workers: Vec<Vec<Event>>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            workers: vec![Vec::new()],
        }
    }

    fn push(&mut self, w: usize, ts: u64, kind: EventKind, arg: u64) {
        self.workers[w].push(Event::new(ts, kind, arg));
    }

    fn new_worker(&mut self) -> usize {
        self.workers.push(Vec::new());
        self.workers.len() - 1
    }

    fn into_traces(self) -> Vec<WorkerTrace> {
        self.workers
            .into_iter()
            .enumerate()
            .map(|(index, events)| WorkerTrace {
                index,
                events,
                dropped: 0,
            })
            .collect()
    }
}

/// Serial schedule: everything on worker 0; spawned children run to
/// completion immediately and the continuation is reclaimed by `FastPop`.
/// Returns the completion time.
fn run_serial(dag: &SimDag, task: usize, em: &mut Emitter, mut t: u64) -> u64 {
    let f = frame_of(task);
    for item in &dag.tasks[task].items {
        match item {
            Item::Work(w) => t += w,
            Item::Call(c) => t = run_serial(dag, *c, em, t),
            Item::Spawn(c) => {
                em.push(0, t, EventKind::Spawn, f);
                t = run_serial(dag, *c, em, t);
                em.push(0, t, EventKind::FastPop, f);
            }
            Item::Sync => em.push(0, t, EventKind::SyncInline, f),
        }
    }
    t
}

/// Always-steal schedule: every offered continuation is stolen by a fresh
/// virtual worker at the spawn instant (zero-latency steal), the child
/// keeps the spawning worker, and each child end emits `Join`. A sync
/// whose children all ended by the time the continuation reaches it is
/// inline; otherwise it suspends and the last joiner resumes it.
///
/// Control flow migrates, so execution is tracked as a (worker, time)
/// cursor; the function returns where the task's final strand ended.
fn run_stolen(dag: &SimDag, task: usize, em: &mut Emitter, w: usize, t: u64) -> (usize, u64) {
    let f = frame_of(task);
    let (mut cur_w, mut cur_t) = (w, t);
    // (end ts, end worker) per child of the open region; merged-stream
    // order on ties is push order, which matches this Vec's order.
    let mut region: Vec<(u64, usize)> = Vec::new();
    for item in &dag.tasks[task].items {
        match item {
            Item::Work(wk) => cur_t += wk,
            Item::Call(c) => (cur_w, cur_t) = run_stolen(dag, *c, em, cur_w, cur_t),
            Item::Spawn(c) => {
                em.push(cur_w, cur_t, EventKind::Spawn, f);
                let thief = em.new_worker();
                em.push(thief, cur_t, EventKind::Steal, pack_steal_arg(cur_w, f));
                // Child on the spawning worker; continuation on the thief.
                let (cw, ct) = run_stolen(dag, *c, em, cur_w, cur_t);
                em.push(cw, ct, EventKind::Join, f);
                region.push((ct, cw));
                cur_w = thief;
            }
            Item::Sync => {
                // The fresh-thief discipline gives every strand end a
                // distinct (ts, worker) ordering key, so "did every child
                // end before the continuation arrived?" is exact.
                let last = region.iter().copied().max();
                region.clear();
                match last {
                    Some((lt, lw)) if (lt, lw) > (cur_t, cur_w) => {
                        em.push(cur_w, cur_t, EventKind::SyncSuspend, f);
                        em.push(lw, lt, EventKind::SyncResume, f);
                        (cur_w, cur_t) = (lw, lt);
                    }
                    _ => em.push(cur_w, cur_t, EventKind::SyncInline, f),
                }
            }
        }
    }
    (cur_w, cur_t)
}

fn profile_serial(dag: &SimDag) -> CausalProfile {
    let mut em = Emitter::new();
    em.push(0, 0, EventKind::Root, 0);
    let end = run_serial(dag, 0, &mut em, 0);
    // Terminal marker so the root's trailing strand has a busy boundary.
    em.push(0, end, EventKind::SyncInline, frame_of(0));
    CausalProfile::from_workers(&em.into_traces())
}

fn profile_stolen(dag: &SimDag) -> CausalProfile {
    let mut em = Emitter::new();
    em.push(0, 0, EventKind::Root, 0);
    let (ew, et) = run_stolen(dag, 0, &mut em, 0, 0);
    em.push(ew, et, EventKind::SyncInline, frame_of(0));
    CausalProfile::from_workers(&em.into_traces())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serial_schedule_roundtrips_work_and_span(prog in shape_strategy()) {
        let dag = build_dag(&prog);
        let p = profile_serial(&dag);
        prop_assert!(p.complete(), "lossless stream must replay cleanly: {p:?}");
        prop_assert_eq!(p.t1_ns, dag.total_work(), "T1 == total work");
        prop_assert_eq!(p.span_ns, dag.span(), "T∞ == analytic span");
        prop_assert_eq!(p.spawns as usize, dag.spawn_count());
        prop_assert_eq!(p.fast_pops, p.spawns, "serial: every spawn fast-popped");
        prop_assert_eq!(p.steals, 0);
    }

    #[test]
    fn always_steal_schedule_roundtrips_work_and_span(prog in shape_strategy()) {
        let dag = build_dag(&prog);
        // The event encoding carries 8-bit victim indices, mirroring the
        // runtime's worker-count bound; fresh-thief scheduling allocates
        // one worker per spawn, so oversized DAGs are skipped (the
        // generator's sizing makes them rare).
        if dag.spawn_count() >= 255 {
            return Ok(());
        }
        let p = profile_stolen(&dag);
        prop_assert!(p.complete(), "every steal must pair with its spawn: {p:?}");
        prop_assert_eq!(p.t1_ns, dag.total_work(), "T1 == total work");
        prop_assert_eq!(p.span_ns, dag.span(), "T∞ == analytic span");
        prop_assert_eq!(p.steals as usize, dag.spawn_count());
        prop_assert_eq!(p.matched_steals, p.steals);
        prop_assert_eq!(p.fast_pops, 0);
        prop_assert_eq!(p.steal_edges.len() as u64, p.matched_steals);
    }

    /// The two schedules realise the same DAG: their reconstructed T1 and
    /// T∞ must agree with each other, not just with the oracle.
    #[test]
    fn schedules_agree_on_the_dag(prog in shape_strategy()) {
        let dag = build_dag(&prog);
        if dag.spawn_count() >= 255 {
            return Ok(());
        }
        let a = profile_serial(&dag);
        let b = profile_stolen(&dag);
        prop_assert_eq!(a.t1_ns, b.t1_ns);
        prop_assert_eq!(a.span_ns, b.span_ns);
        prop_assert_eq!(a.spawns, b.spawns);
    }
}
