//! Micro-cost probe for the hot recording path (dev aid: run with
//! --release and read ns/op).
use nowa_trace::{Event, EventKind, EventRing, TraceBuffer};
use std::time::Instant;

fn main() {
    let n = 5_000_000u64;

    let ring = EventRing::new(1 << 14);
    let t0 = Instant::now();
    for i in 0..n {
        ring.push(Event::new(i, EventKind::Spawn, i));
    }
    println!(
        "ring.push alone: {:.1} ns/op",
        t0.elapsed().as_nanos() as f64 / n as f64
    );

    let buf = TraceBuffer::new(1 << 14);
    let t0 = Instant::now();
    for i in 0..n {
        buf.hot_event(EventKind::FastPop, i);
    }
    println!(
        "hot_event: {:.1} ns/op",
        t0.elapsed().as_nanos() as f64 / n as f64
    );

    let buf = TraceBuffer::new(1 << 14);
    let t0 = Instant::now();
    for i in 0..n {
        buf.spawn(i, || 3);
        buf.hot_event(EventKind::FastPop, i);
        buf.hot_event(EventKind::SyncInline, i);
    }
    let per = t0.elapsed().as_nanos() as f64 / n as f64;
    println!(
        "spawn+fastpop+syncinline: {per:.1} ns/iter ({:.1} ns/event)",
        per / 3.0
    );
}
