//! Concurrent stress tests shared by all four deque algorithms.
//!
//! The invariant checked everywhere: every pushed token is received by
//! exactly one consumer (owner pop or some thief), i.e. the multiset of
//! outputs equals the multiset of inputs — no loss, no duplication.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use nowa_deque::{Abp, Cl, DequeAlgo, Locked, Steal, StealerOps, The, WorkerOps};

/// Runs `pushes` tokens through a deque with `thieves` concurrent stealers
/// while the owner interleaves pushes and pops, then checks conservation.
fn conservation<A: DequeAlgo>(pushes: usize, thieves: usize, capacity: usize) {
    let (worker, stealer) = A::create::<usize>(capacity);
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicUsize::new(0));
    let stolen_count = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..thieves)
        .map(|_| {
            let stealer = stealer.clone();
            let done = done.clone();
            let stolen_sum = stolen_sum.clone();
            let stolen_count = stolen_count.clone();
            thread::spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(v) => {
                        stolen_sum.fetch_add(v, Ordering::Relaxed);
                        stolen_count.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut popped_sum = 0usize;
    let mut popped_count = 0usize;
    let mut next = 0usize;
    while next < pushes {
        // Push a small burst (bounded algorithms may refuse; drain and retry).
        for _ in 0..7 {
            if next >= pushes {
                break;
            }
            match worker.push(next) {
                Ok(()) => next += 1,
                Err(_) => break,
            }
        }
        // Pop a couple back.
        for _ in 0..3 {
            if let Some(v) = worker.pop() {
                popped_sum += v;
                popped_count += 1;
            }
        }
    }
    // Drain whatever the thieves left behind.
    while let Some(v) = worker.pop() {
        popped_sum += v;
        popped_count += 1;
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    // Late steals after our final pop cannot exist: pop returned None and
    // thieves only observed Empty afterwards. Check conservation.
    let total_count = popped_count + stolen_count.load(Ordering::Relaxed);
    let total_sum = popped_sum + stolen_sum.load(Ordering::Relaxed);
    assert_eq!(total_count, pushes, "token count conserved");
    assert_eq!(total_sum, pushes * (pushes - 1) / 2, "token sum conserved");
}

#[test]
fn cl_conservation_two_thieves() {
    conservation::<Cl>(100_000, 2, 8);
}

#[test]
fn cl_conservation_four_thieves_tiny_buffer() {
    conservation::<Cl>(50_000, 4, 2);
}

#[test]
fn the_conservation_two_thieves() {
    conservation::<The>(100_000, 2, 1024);
}

#[test]
fn the_conservation_four_thieves() {
    conservation::<The>(50_000, 4, 1024);
}

#[test]
fn abp_conservation_two_thieves() {
    conservation::<Abp>(100_000, 2, 1024);
}

#[test]
fn abp_conservation_four_thieves() {
    conservation::<Abp>(50_000, 4, 1024);
}

#[test]
fn locked_conservation_two_thieves() {
    conservation::<Locked>(100_000, 2, 16);
}

/// The owner's pop and a single thief race for the final element; exactly
/// one of them must receive it, every time.
fn last_element_race<A: DequeAlgo>(rounds: usize) {
    for _ in 0..rounds {
        let (worker, stealer) = A::create::<usize>(8);
        worker.push(42).unwrap();
        let thief = thread::spawn(move || stealer.steal_retrying());
        let popped = worker.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(42), None) | (None, Some(42)) => {}
            other => panic!("last element lost or duplicated: {other:?}"),
        }
    }
}

#[test]
fn cl_last_element_race() {
    last_element_race::<Cl>(2_000);
}

#[test]
fn the_last_element_race() {
    last_element_race::<The>(2_000);
}

#[test]
fn abp_last_element_race() {
    last_element_race::<Abp>(2_000);
}

#[test]
fn locked_last_element_race() {
    last_element_race::<Locked>(2_000);
}

/// Thieves racing each other must never duplicate an element.
fn thief_vs_thief<A: DequeAlgo>() {
    let (worker, stealer) = A::create::<usize>(4096);
    let n = 4096;
    for i in 0..n {
        worker.push(i).unwrap();
    }
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stealer = stealer.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
                got
            })
        })
        .collect();
    let mut all: Vec<usize> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "no element lost or duplicated");
}

#[test]
fn cl_thief_vs_thief() {
    thief_vs_thief::<Cl>();
}

#[test]
fn the_thief_vs_thief() {
    thief_vs_thief::<The>();
}

#[test]
fn abp_thief_vs_thief() {
    thief_vs_thief::<Abp>();
}

#[test]
fn locked_thief_vs_thief() {
    thief_vs_thief::<Locked>();
}
