//! Property-based model tests: single-threaded op sequences against a
//! reference `VecDeque`, for every deque algorithm.

use std::collections::VecDeque;

use nowa_deque::{Abp, Cl, DequeAlgo, Locked, Steal, StealerOps, The, WorkerOps};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(usize),
    Pop,
    Steal,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => any::<usize>().prop_map(Op::Push),
            2 => Just(Op::Pop),
            2 => Just(Op::Steal),
        ],
        0..200,
    )
}

/// Replays `ops` against the algorithm and a VecDeque model. Since all calls
/// happen on one thread, the deque must behave exactly like the model
/// (bounded algorithms are given enough capacity to never refuse).
fn check_model<A: DequeAlgo>(ops: &[Op]) {
    let (worker, stealer) = A::create::<usize>(512);
    let mut model: VecDeque<usize> = VecDeque::new();
    for op in ops {
        match op {
            Op::Push(v) => {
                worker.push(*v).unwrap();
                model.push_back(*v);
            }
            Op::Pop => {
                assert_eq!(worker.pop(), model.pop_back());
            }
            Op::Steal => {
                let expected = model.pop_front();
                match stealer.steal() {
                    Steal::Success(v) => assert_eq!(Some(v), expected),
                    Steal::Empty => assert_eq!(None, expected),
                    Steal::Retry => panic!("uncontended steal must not retry"),
                }
            }
        }
        assert_eq!(worker.len(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cl_matches_model(ops in ops()) {
        check_model::<Cl>(&ops);
    }

    #[test]
    fn the_matches_model(ops in ops()) {
        check_model::<The>(&ops);
    }

    #[test]
    fn abp_matches_model(ops in ops()) {
        check_model::<Abp>(&ops);
    }

    #[test]
    fn locked_matches_model(ops in ops()) {
        check_model::<Locked>(&ops);
    }
}
