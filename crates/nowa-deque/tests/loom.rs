//! Loom models for the work-stealing deques.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nowa-deque --test loom --release
//! ```
//!
//! Each model asserts the deques' fundamental invariant — *exactly-once
//! delivery*: every pushed item is taken by exactly one of {owner pop,
//! thief steal}. The `*_canary` models re-implement the Chase–Lev core with
//! a deliberately missing/weakened ordering and `#[should_panic]` that the
//! checker catches the resulting duplication — proof the passing models
//! actually explore the interleavings they claim to.

#![cfg(loom)]

use nowa_deque::{
    AbpDeque, ClDeque, SplitConfig, SplitDeque, Steal, StealerOps, TheDeque, WorkerOps,
};

/// Owner pushes then pops while one thief steals: every item claimed
/// exactly once, none lost, none duplicated.
///
/// Covers: CL push (release fence before `bottom` store), pop (SC fence
/// between the `bottom` decrement and the `top` read), steal (SC fence
/// between the `top` and `bottom` reads, validating CAS).
#[test]
fn cl_owner_vs_thief_exactly_once() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(4);
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                match s.steal() {
                    Steal::Success(v) => got.push(v),
                    Steal::Empty | Steal::Retry => {}
                }
            }
            got
        });
        w.push(1).unwrap();
        w.push(2).unwrap();
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        let stolen = thief.join().unwrap();
        got.extend(stolen);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "every item claimed exactly once");
    });
}

/// The single-element race from §IV-C: owner pop and thief steal fight for
/// the last item through the `top` CAS; exactly one must win.
#[test]
fn cl_single_item_owner_thief_race() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(2);
        w.push(7).unwrap();
        let thief = loom::thread::spawn(move || s.steal().success());
        let popped = w.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(7), None) | (None, Some(7)) => {}
            other => panic!("last item must go to exactly one side, got {other:?}"),
        }
    });
}

/// Two thieves and the owner contend over two items; `Retry` losses are
/// allowed, duplication and loss are not.
#[test]
fn cl_two_thieves() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(4);
        w.push(1).unwrap();
        w.push(2).unwrap();
        let s2 = s.clone();
        let t1 = loom::thread::spawn(move || s.steal().success());
        let t2 = loom::thread::spawn(move || s2.steal().success());
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.extend(t1.join().unwrap());
        got.extend(t2.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "every item claimed exactly once");
    });
}

/// Growth race: the owner's third push doubles the 2-slot ring (copying
/// the live range, then publishing the new ring with a release swap)
/// while a thief steals concurrently. The thief must either see the old
/// ring (whose live slots growth never touches) or the fully-copied new
/// one via the `buffer` Acquire/Release pairing — never a half-built
/// ring — and every item is still claimed exactly once.
#[test]
fn cl_grow_during_steal() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        let thief = loom::thread::spawn(move || s.steal().success());
        w.push(3).unwrap(); // grows unless the thief already advanced `top`
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(
            got,
            vec![1, 2, 3],
            "every item claimed exactly once across growth"
        );
    });
}

/// THE deque: the Dijkstra-style owner/thief arbitration keeps the last
/// item exclusive.
#[test]
fn the_single_item_owner_thief_race() {
    loom::model(|| {
        let (w, s) = TheDeque::<usize>::new(4);
        w.push(7).unwrap();
        let thief = loom::thread::spawn(move || s.steal().success());
        let popped = w.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(7), None) | (None, Some(7)) => {}
            other => panic!("last item must go to exactly one side, got {other:?}"),
        }
    });
}

/// ABP deque: the tagged-`age` CAS keeps the last item exclusive even
/// through the owner's index reset.
#[test]
fn abp_single_item_owner_thief_race() {
    loom::model(|| {
        let (w, s) = AbpDeque::<usize>::new(4);
        w.push(7).unwrap();
        let thief = loom::thread::spawn(move || s.steal().success());
        let popped = w.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(7), None) | (None, Some(7)) => {}
            other => panic!("last item must go to exactly one side, got {other:?}"),
        }
    });
}

/// ABP: after steals + drain the owner resets indices; a thief holding a
/// stale `age` must not be able to claim a slot from the new generation.
#[test]
fn abp_reset_blocks_stale_thief() {
    loom::model(|| {
        let (w, s) = AbpDeque::<usize>::new(4);
        w.push(1).unwrap();
        let thief = loom::thread::spawn(move || s.steal().success());
        let first = w.pop();
        // Reset may have happened; the next generation's item must be
        // claimed exactly once too.
        w.push(2).unwrap();
        let second = w.pop();
        let stolen = thief.join().unwrap();
        let mut got: Vec<usize> = [first, second, stolen].into_iter().flatten().collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![1, 2],
            "tag generation must fence off stale thieves"
        );
    });
}

// ---------------------------------------------------------------------------
// Split layer (§6g): lazy promotion from the owner-private segment into the
// public deque, raced against thieves. The promotion itself publishes items
// through the wrapped deque's own release/acquire push, and the hunger flag
// is advisory `Relaxed` — these models check that conservation holds across
// every interleaving of that protocol.
// ---------------------------------------------------------------------------

/// Owner promotes (batch boundary, `promote_batch = 1`) while a thief
/// steals: every item is claimed by exactly one of {owner pop, thief
/// steal}, and a promoted item never surfaces twice — once from the
/// private ring and once from the public deque.
///
/// Covers the §7b rows for `push_spawn`'s hunger probe/clear: the thief's
/// `Relaxed` hunger store races the owner's load, flipping the owner
/// between keep-one (boundary) and keep-zero (hungry) promotion — both
/// must conserve.
#[test]
fn split_promote_visible_exactly_once() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(4);
        let cfg = SplitConfig {
            enabled: true,
            promote_batch: 1,
            promote_on_wake: true,
        };
        let (w, s) = SplitDeque::wrap(w, s, cfg, 4);
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Steal::Success(v) = s.steal() {
                    got.push(v);
                }
            }
            got
        });
        w.push_spawn(1).unwrap();
        w.push_spawn(2).unwrap(); // boundary: promotes the oldest item
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(
            got,
            vec![1, 2],
            "every item claimed exactly once across promotion"
        );
    });
}

/// The hunger signal: a thief's failed sweep (`Relaxed` store) races the
/// owner's per-push probe (`Relaxed` load). Whichever way the race lands,
/// no item is lost or duplicated; and when the owner provably missed the
/// signal (`promoted == 0`), the post-join flag must be visible and the
/// next push must promote everything despite the distant batch boundary.
#[test]
fn split_hungry_promotion() {
    loom::model(|| {
        let (w, s) = ClDeque::<usize>::new(8);
        let cfg = SplitConfig {
            enabled: true,
            promote_batch: 1024, // only hunger can trigger promotion here
            promote_on_wake: true,
        };
        let (w, s) = SplitDeque::wrap(w, s, cfg, 8);
        w.push_spawn(1).unwrap(); // stays private: the boundary is far away
        let s2 = s.clone();
        let thief = loom::thread::spawn(move || s2.steal().success());
        let r = w.push_spawn(2).unwrap(); // races the thief's hunger store
        let stolen = thief.join().unwrap();
        if r.promoted == 0 {
            // The owner's probe read 0, so nothing was ever public: the
            // sweep can only have failed, and its hunger store is now
            // visible (join edge). The very next push promotes all.
            assert!(stolen.is_none(), "nothing was public to steal");
            assert!(w.hungry_flag(), "failed sweep raised hunger");
            assert_eq!(w.push_spawn(3).unwrap().promoted, 3);
        } else {
            w.push_spawn(3).unwrap();
        }
        let mut got: Vec<usize> = stolen.into_iter().collect();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        while let Steal::Success(v) = s.steal() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "conservation across the hunger race");
    });
}

// ---------------------------------------------------------------------------
// Canaries: the same Chase–Lev core with one ordering broken. These MUST
// fail — they prove the passing models above have teeth.
// ---------------------------------------------------------------------------

mod mini_cl {
    //! A growth-free Chase–Lev core, parameterised over the two orderings
    //! the canaries break. Mirrors `nowa_deque::cl` closely enough that a
    //! bug the canary plants is a bug the real model would catch.

    use loom::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

    pub struct MiniCl {
        top: AtomicI64,
        bottom: AtomicI64,
        slots: [AtomicU64; 4],
        /// `false` drops the SC fence in `pop` — the Norris & Demsky bug.
        pop_fence: bool,
        /// `false` downgrades `push`'s release fence to nothing — the
        /// classic message-passing hole on the item payload.
        push_release: bool,
    }

    impl MiniCl {
        pub fn new(pop_fence: bool, push_release: bool) -> MiniCl {
            MiniCl {
                top: AtomicI64::new(0),
                bottom: AtomicI64::new(0),
                slots: [const { AtomicU64::new(0) }; 4],
                pop_fence,
                push_release,
            }
        }

        fn slot(&self, i: i64) -> &AtomicU64 {
            &self.slots[(i & 3) as usize]
        }

        pub fn push(&self, v: u64) {
            let b = self.bottom.load(Ordering::Relaxed);
            self.slot(b).store(v, Ordering::Relaxed);
            if self.push_release {
                fence(Ordering::Release);
            }
            self.bottom.store(b + 1, Ordering::Relaxed);
        }

        pub fn pop(&self) -> Option<u64> {
            let b = self.bottom.load(Ordering::Relaxed) - 1;
            self.bottom.store(b, Ordering::Relaxed);
            if self.pop_fence {
                fence(Ordering::SeqCst);
            }
            let t = self.top.load(Ordering::Relaxed);
            if t <= b {
                let word = self.slot(b).load(Ordering::Relaxed);
                if t == b {
                    let won = self
                        .top
                        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok();
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    if !won {
                        return None;
                    }
                }
                Some(word)
            } else {
                self.bottom.store(b + 1, Ordering::Relaxed);
                None
            }
        }

        pub fn steal(&self) -> Option<u64> {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let word = self.slot(t).load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return None;
            }
            Some(word)
        }
    }
}

/// Sanity: the mini-CL with all fences intact passes the duplication test
/// (so the canary failures below are attributable to the planted bug).
#[test]
fn mini_cl_intact_passes() {
    loom::model(|| {
        let q = loom::sync::Arc::new(mini_cl::MiniCl::new(true, true));
        q.push(1);
        q.push(2);
        let thief = {
            let q = q.clone();
            loom::thread::spawn(move || {
                let mut got = Vec::new();
                got.extend(q.steal());
                got.extend(q.steal());
                got
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "duplication or loss");
    });
}

/// CANARY: without `pop`'s SeqCst fence the owner can read a stale `top`,
/// skip the last-item CAS, and take an item a thief already stole — the
/// exact bug the fence comment in `cl.rs` protects against.
#[test]
#[should_panic(expected = "duplication or loss")]
fn cl_pop_fence_canary_fails() {
    loom::model(|| {
        let q = loom::sync::Arc::new(mini_cl::MiniCl::new(false, true));
        q.push(1);
        q.push(2);
        let thief = {
            let q = q.clone();
            loom::thread::spawn(move || {
                let mut got = Vec::new();
                got.extend(q.steal());
                got.extend(q.steal());
                got
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.extend(thief.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "duplication or loss");
    });
}

/// CANARY: without `push`'s release fence a thief can claim a slot before
/// the item word is visible and steal a stale (here: zero) payload.
#[test]
#[should_panic(expected = "stale payload")]
fn cl_push_release_canary_fails() {
    loom::model(|| {
        let q = loom::sync::Arc::new(mini_cl::MiniCl::new(true, false));
        let thief = {
            let q = q.clone();
            loom::thread::spawn(move || q.steal())
        };
        q.push(9);
        if let Some(v) = thief.join().unwrap() {
            assert_eq!(v, 9, "stale payload");
        }
    });
}

mod mini_split {
    //! A one-slot promotion mailbox: the essence of the split layer's
    //! private→public handoff, reduced to "store the payload, then publish
    //! the ready flag". In the real layer the publish edge is the wrapped
    //! deque's release push (the hunger flag is advisory and carries no
    //! data) — this mini model isolates exactly that edge so the canary
    //! can break it.

    use loom::sync::atomic::{AtomicU64, Ordering};

    pub struct MiniSplit {
        /// The promoted item's payload — the "public slot".
        slot: AtomicU64,
        /// Nonzero once the slot is ready for thieves.
        ready: AtomicU64,
        /// `false` downgrades the publish to `Relaxed` — the hole the
        /// wrapped deque's release push closes in the real layer.
        publish_release: bool,
    }

    impl MiniSplit {
        pub fn new(publish_release: bool) -> MiniSplit {
            MiniSplit {
                slot: AtomicU64::new(0),
                ready: AtomicU64::new(0),
                publish_release,
            }
        }

        /// Owner: promote `v` out of the private segment.
        pub fn promote(&self, v: u64) {
            self.slot.store(v, Ordering::Relaxed);
            let publish = if self.publish_release {
                Ordering::Release
            } else {
                Ordering::Relaxed
            };
            self.ready.store(1, publish);
        }

        /// Thief: take the promoted item if published.
        pub fn steal(&self) -> Option<u64> {
            if self.ready.load(Ordering::Acquire) == 0 {
                return None;
            }
            Some(self.slot.load(Ordering::Relaxed))
        }
    }
}

/// Sanity: the mini-split with the release publish intact never hands a
/// thief a stale payload (so the canary below is attributable to the
/// planted downgrade).
#[test]
fn mini_split_intact_passes() {
    loom::model(|| {
        let q = loom::sync::Arc::new(mini_split::MiniSplit::new(true));
        let thief = {
            let q = q.clone();
            loom::thread::spawn(move || q.steal())
        };
        q.promote(9);
        if let Some(v) = thief.join().unwrap() {
            assert_eq!(v, 9, "stale payload");
        }
    });
}

/// CANARY: with the promotion publish downgraded to `Relaxed` a thief can
/// observe the ready flag before the payload — the stale-read hole the
/// split layer avoids by riding the wrapped deque's release push.
#[test]
#[should_panic(expected = "stale payload")]
fn split_publish_canary_fails() {
    loom::model(|| {
        let q = loom::sync::Arc::new(mini_split::MiniSplit::new(false));
        let thief = {
            let q = q.clone();
            loom::thread::spawn(move || q.steal())
        };
        q.promote(9);
        if let Some(v) = thief.join().unwrap() {
            assert_eq!(v, 9, "stale payload");
        }
    });
}
