//! Work-stealing deques for the Nowa concurrency platform.
//!
//! This crate provides the four double-ended work-stealing queues discussed in
//! the paper *“Nowa: A Wait-Free Continuation-Stealing Concurrency Platform”*
//! (IPDPS 2021), §II-A and §II-D:
//!
//! * [`ClDeque`] — the Chase–Lev dynamic circular deque (SPAA 2005), with the
//!   C11 memory orderings of Lê et al. (PPoPP 2013). Fully lock-free; this is
//!   the queue Nowa pairs with its wait-free join protocol (§IV-C).
//! * [`TheDeque`] — the Cilk-5 THE (Tail, Head, Exception) protocol
//!   (PLDI 1998). The owner elides the lock unless the ends conflict; thieves
//!   serialize on a per-deque lock.
//! * [`AbpDeque`] — the Arora–Blumofe–Plaxton non-blocking deque (SPAA 1998)
//!   with a tagged `(top, tag)` word updated by CAS. Its effective capacity
//!   can shrink until the reset mitigation triggers (§II-D).
//! * [`LockedDeque`] — a fully mutex-protected deque, the baseline every
//!   lock-based runtime layer degenerates to.
//!
//! # Ownership discipline
//!
//! Work-stealing deques are only *partially* multithread-safe (§II-A): the
//! bottom end belongs to exactly one worker, while any number of thieves may
//! concurrently call `steal` on the top end. The API encodes this in the type
//! system: creating a deque yields a worker-side handle (not `Sync`, cannot
//! be cloned) and a stealer-side handle (`Clone + Send + Sync`).
//!
//! # Item representation
//!
//! The deques natively move machine-word [`Token`]s (anything convertible to
//! and from a non-zero `u64`, such as `NonNull<T>`). This mirrors the paper's
//! runtime systems, which enqueue continuation pointers, and lets every slot
//! be a plain atomic — element accesses are data-race-free by construction
//! under the C11/Rust memory model.
//!
//! ```
//! use nowa_deque::{ClDeque, Steal, StealerOps, WorkerOps};
//!
//! let (worker, stealer) = ClDeque::<usize>::new(8);
//! worker.push(1).unwrap();
//! worker.push(2).unwrap();
//! assert_eq!(stealer.steal(), Steal::Success(1)); // FIFO at the top
//! assert_eq!(worker.pop(), Some(2)); // LIFO at the bottom
//! assert_eq!(worker.pop(), None);
//! ```

#![warn(missing_docs)]

mod abp;
#[cfg(feature = "chaos")]
pub mod chaos;
mod cl;
mod locked;
mod split;
mod sync;
mod the;
mod token;

pub use abp::{AbpDeque, AbpStealer, AbpWorker};
pub use cl::{ClDeque, ClStealer, ClWorker};
pub use locked::{LockedDeque, LockedStealer, LockedWorker};
pub use split::{SplitConfig, SplitDeque, SplitPush, SplitStealer, SplitWorker};
pub use the::{TheDeque, TheStealer, TheWorker};
pub use token::{Ptr, Token};

/// Result of a [`steal`](StealerOps::steal) attempt on the top end of a deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// An item was stolen.
    Success(T),
    /// The thief lost a race with another thief or the owner and should
    /// retry (possibly on a different victim).
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(item) => Some(item),
            _ => None,
        }
    }

    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Error returned when a bounded deque cannot accept another item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full<T>(pub T);

/// Owner-side operations (the *bottom* end, §II-A).
///
/// Handles implementing this trait must be used from a single thread at a
/// time; they are `Send` but deliberately not `Sync` and not `Clone`.
pub trait WorkerOps<T: Token> {
    /// Pushes an item on the bottom end.
    ///
    /// Bounded algorithms ([`TheDeque`], [`AbpDeque`]) return [`Full`] when
    /// out of space; [`ClDeque`] grows and never fails; [`LockedDeque`]
    /// never fails.
    fn push(&self, item: T) -> Result<(), Full<T>>;

    /// Pops an item from the bottom end (LIFO relative to `push`).
    fn pop(&self) -> Option<T>;

    /// A snapshot of the number of enqueued items. Racy; for heuristics and
    /// statistics only.
    fn len(&self) -> usize;

    /// True if `len() == 0` at the time of the snapshot.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Thief-side operations (the *top* end, §II-A).
pub trait StealerOps<T: Token>: Clone + Send + Sync {
    /// Attempts to steal the item at the top end (FIFO relative to `push`).
    fn steal(&self) -> Steal<T>;

    /// Retries [`steal`](Self::steal) until it returns something other than
    /// [`Steal::Retry`].
    fn steal_retrying(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(item) => return Some(item),
                Steal::Empty => return None,
                Steal::Retry => crate::sync::busy_spin(),
            }
        }
    }
}

/// A work-stealing deque algorithm, used to make runtimes generic over the
/// queue at their core (reproduces the Fig. 9 ablation).
pub trait DequeAlgo: 'static {
    /// Owner-side handle type.
    type Worker<T: Token>: WorkerOps<T> + Send;
    /// Thief-side handle type.
    type Stealer<T: Token>: StealerOps<T> + 'static;

    /// Human-readable algorithm name (used in reports).
    const NAME: &'static str;

    /// Creates a deque with capacity for at least `capacity` items.
    fn create<T: Token>(capacity: usize) -> (Self::Worker<T>, Self::Stealer<T>);
}

/// Marker type selecting the Chase–Lev queue (the Nowa default).
pub struct Cl;
/// Marker type selecting the Cilk-5 THE queue.
pub struct The;
/// Marker type selecting the Arora–Blumofe–Plaxton queue.
pub struct Abp;
/// Marker type selecting the fully-locked queue.
pub struct Locked;

impl DequeAlgo for Cl {
    type Worker<T: Token> = ClWorker<T>;
    type Stealer<T: Token> = ClStealer<T>;
    const NAME: &'static str = "cl";
    fn create<T: Token>(capacity: usize) -> (Self::Worker<T>, Self::Stealer<T>) {
        ClDeque::new(capacity)
    }
}

impl DequeAlgo for The {
    type Worker<T: Token> = TheWorker<T>;
    type Stealer<T: Token> = TheStealer<T>;
    const NAME: &'static str = "the";
    fn create<T: Token>(capacity: usize) -> (Self::Worker<T>, Self::Stealer<T>) {
        TheDeque::new(capacity)
    }
}

impl DequeAlgo for Abp {
    type Worker<T: Token> = AbpWorker<T>;
    type Stealer<T: Token> = AbpStealer<T>;
    const NAME: &'static str = "abp";
    fn create<T: Token>(capacity: usize) -> (Self::Worker<T>, Self::Stealer<T>) {
        AbpDeque::new(capacity)
    }
}

impl DequeAlgo for Locked {
    type Worker<T: Token> = LockedWorker<T>;
    type Stealer<T: Token> = LockedStealer<T>;
    const NAME: &'static str = "locked";
    fn create<T: Token>(capacity: usize) -> (Self::Worker<T>, Self::Stealer<T>) {
        LockedDeque::new(capacity)
    }
}
