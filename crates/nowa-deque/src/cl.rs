//! Chase–Lev dynamic circular work-stealing deque.
//!
//! D. Chase and Y. Lev, *Dynamic circular work-stealing deque*, SPAA 2005,
//! with the C11 memory orderings of N. M. Lê, A. Pop, A. Cohen and
//! F. Zappa Nardelli, *Correct and efficient work-stealing for weak memory
//! models*, PPoPP 2013 (including the fix discovered by Norris & Demsky with
//! CDSChecker — the `bottom` store in `take` must be preceded by the
//! sequentially-consistent fence *before* reading `top`).
//!
//! The deque is based on 64-bit monotone counters that double as generation
//! counters and ring-buffer indices, so — unlike the ABP deque — space freed
//! by steals is immediately reusable (§II-D of the Nowa paper).
//!
//! Growth allocates a ring of twice the capacity and publishes it with a
//! release store. Retired buffers cannot be freed while concurrent thieves
//! may still read them, so they are parked in a retirement list owned by the
//! deque and reclaimed when the deque itself is dropped. Total retired memory
//! is bounded by twice the largest buffer (geometric series).

use core::cell::Cell;
use core::marker::PhantomData;
use core::num::NonZeroU64;
use std::sync::Arc;

use crate::sync::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};

use crate::sync::Mutex;
use crate::{Full, Steal, StealerOps, Token, WorkerOps};

/// A ring buffer of atomic word slots, sized to a power of two.
struct Ring {
    mask: u64,
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(capacity: usize) -> Box<Ring> {
        let capacity = capacity.next_power_of_two().max(2);
        let slots = (0..capacity).map(|_| AtomicU64::new(0)).collect();
        Box::new(Ring {
            mask: capacity as u64 - 1,
            slots,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, index: i64) -> &AtomicU64 {
        // The ring is indexed by the low bits of the monotone counter.
        &self.slots[(index as u64 & self.mask) as usize]
    }
}

struct Inner {
    /// Monotone steal counter; thieves advance it with CAS.
    top: AtomicI64,
    /// Monotone owner counter; only the owner writes it.
    bottom: AtomicI64,
    /// Current ring, swapped by the owner on growth.
    buffer: AtomicPtr<Ring>,
    /// Rings replaced by growth; freed when the deque drops.
    retired: Mutex<Vec<*mut Ring>>,
}

unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // Exclusive access: reclaim the live ring and every retired ring.
        // (A plain load, not `get_mut` — the loom twin has no `get_mut`.)
        let live = self.buffer.load(Ordering::Relaxed);
        unsafe { drop(Box::from_raw(live)) };
        for ring in self.retired.get_mut().drain(..) {
            unsafe { drop(Box::from_raw(ring)) };
        }
    }
}

/// Constructor namespace for the Chase–Lev deque.
///
/// See the [crate docs](crate) for the ownership discipline shared by all
/// deques in this crate.
pub struct ClDeque<T>(PhantomData<T>);

impl<T: Token> ClDeque<T> {
    /// Creates a deque with capacity for at least `capacity` items. The deque
    /// grows on demand, so the capacity is only the initial allocation.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the handle pair
    pub fn new(capacity: usize) -> (ClWorker<T>, ClStealer<T>) {
        let inner = Arc::new(Inner {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Ring::new(capacity))),
            retired: Mutex::new(Vec::new()),
        });
        (
            ClWorker {
                inner: inner.clone(),
                _not_sync: PhantomData,
                _items: PhantomData,
            },
            ClStealer {
                inner,
                _items: PhantomData,
            },
        )
    }
}

/// Owner-side handle of a [`ClDeque`]. `Send` but not `Sync`/`Clone`.
pub struct ClWorker<T> {
    inner: Arc<Inner>,
    _not_sync: PhantomData<Cell<()>>,
    _items: PhantomData<T>,
}

/// Thief-side handle of a [`ClDeque`].
pub struct ClStealer<T> {
    inner: Arc<Inner>,
    _items: PhantomData<T>,
}

impl<T> Clone for ClStealer<T> {
    fn clone(&self) -> Self {
        ClStealer {
            inner: self.inner.clone(),
            _items: PhantomData,
        }
    }
}

unsafe impl<T: Token> Send for ClWorker<T> {}
unsafe impl<T: Token> Send for ClStealer<T> {}
unsafe impl<T: Token> Sync for ClStealer<T> {}

impl<T> ClWorker<T> {
    /// Grows the ring to twice its size, copying the live range `[top, bottom)`.
    ///
    /// Only the owner calls this, between observing the full condition and
    /// the publishing store of `bottom`, so the live range is stable except
    /// for `top` advancing (which only shrinks the range we must copy).
    #[cold]
    fn grow(&self, old: &Ring, top: i64, bottom: i64) -> *mut Ring {
        let new = Ring::new(old.capacity() * 2);
        for i in top..bottom {
            let word = old.slot(i).load(Ordering::Relaxed);
            new.slot(i).store(word, Ordering::Relaxed);
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.inner.buffer.swap(new_ptr, Ordering::Release);
        self.inner.retired.lock().push(old_ptr);
        new_ptr
    }
}

impl<T: Token> WorkerOps<T> for ClWorker<T> {
    #[inline]
    // lint: hot-path
    fn push(&self, item: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut ring = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        if b - t >= ring.capacity() as i64 {
            ring = unsafe { &*self.grow(ring, t, b) };
        }
        ring.slot(b)
            .store(item.into_word().get(), Ordering::Relaxed);
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
        Ok(())
    }

    #[inline]
    // lint: hot-path
    fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let ring = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            let word = ring.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Single element left: race with thieves for it.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            let word = NonZeroU64::new(word).expect("CL slot in live range holds an item");
            Some(T::from_word(word))
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }
}

impl<T: Token> StealerOps<T> for ClStealer<T> {
    #[inline]
    // lint: hot-path
    fn steal(&self) -> Steal<T> {
        #[cfg(feature = "chaos")]
        if let Some(forced) = crate::chaos::take_forced() {
            return forced.as_steal();
        }
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Non-empty: read the element *before* the CAS claims it. The claim
        // validates the read — on CAS failure the word is discarded.
        let ring = unsafe { &*inner.buffer.load(Ordering::Acquire) };
        let word = ring.slot(t).load(Ordering::Relaxed);
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // A successful CAS proves `top` held `t` from our acquire load until
        // the claim, so the slot cannot have been overwritten in between (an
        // overwrite of index `t`'s slot requires `top > t` first) and the
        // ring we loaded after the acquire `bottom` read is recent enough to
        // contain index `t` (growth copies the live range before the
        // publishing `bottom` store). The word is therefore the pushed item.
        let word = NonZeroU64::new(word).expect("claimed CL slot holds an item");
        Steal::Success(T::from_word(word))
    }
}

impl<T: Token> ClStealer<T> {
    /// A racy snapshot of the number of enqueued items.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True if the snapshot observed no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_bottom_fifo_top() {
        let (w, s) = ClDeque::<usize>::new(4);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, s) = ClDeque::<usize>::new(2);
        for i in 0..1000 {
            w.push(i).unwrap();
        }
        assert_eq!(w.len(), 1000);
        for i in 0..500 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        for i in (500..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_reuse_of_freed_space() {
        // Unlike ABP, CL reuses space freed by steals: push/steal forever
        // within a tiny ring without growing.
        let (w, s) = ClDeque::<usize>::new(2);
        for round in 0..10_000 {
            w.push(round).unwrap();
            assert_eq!(s.steal(), Steal::Success(round));
        }
        // Capacity never had to exceed the initial 2.
        assert_eq!(
            unsafe { &*w.inner.buffer.load(Ordering::Relaxed) }.capacity(),
            2
        );
    }

    #[test]
    fn pop_empty_restores_bottom() {
        let (w, _s) = ClDeque::<usize>::new(4);
        assert_eq!(w.pop(), None);
        assert_eq!(w.pop(), None);
        w.push(9).unwrap();
        assert_eq!(w.pop(), Some(9));
    }

    #[test]
    fn single_element_owner_wins_without_contention() {
        let (w, s) = ClDeque::<usize>::new(4);
        w.push(1).unwrap();
        assert_eq!(w.pop(), Some(1));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn stealer_len_tracks() {
        let (w, s) = ClDeque::<usize>::new(4);
        assert!(s.is_empty());
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(s.len(), 2);
    }
}
