//! Split private/public deque with lazy promotion (DESIGN.md §6g).
//!
//! Work-stealing pays for thief-safety on every owner operation: even the
//! Chase–Lev `push` issues a release store, and its `pop` a full fence plus
//! a possible CAS — all wasted when no thief is looking, which is the
//! common case for fine-grained fork/join (Rito & Paulino, *Scheduling
//! Computations with Provably Low Synchronization*). This module removes
//! that cost by splitting each deque into
//!
//! * a **private segment** — an unsynchronized ring of token words touched
//!   only by the owner (plain [`Cell`]s, no atomics, no fences), holding
//!   the *newest* continuations; and
//! * the **public deque** — the wrapped flavor (CL/THE/ABP/locked),
//!   holding the *oldest* continuations, visible to thieves as before.
//!
//! The owner pushes and pops at the private tail; thieves steal from the
//! public top. Global order is preserved: the public top is the globally
//! oldest item (FIFO for thieves), the private tail the globally newest
//! (LIFO for the owner). Items cross from private to public by **lazy
//! promotion**, triggered two ways:
//!
//! * **batch boundary** — every `promote_batch` pushes the owner promotes
//!   its surplus (all but the item it is about to pop back), bounding how
//!   much work can hide from thieves; and
//! * **hunger** — a thief that observes the public deque empty sets a
//!   shared `hungry` flag; the owner probes it on each push (one read-only
//!   `Relaxed` load of a line that is written at most once per failed
//!   sweep) and, when set, promotes immediately.
//!
//! The hunger flag is purely advisory: promoted items become visible
//! through the public deque's own release/acquire protocol, so all flag
//! accesses are `Relaxed` (audited in DESIGN.md §7b). A promotion that
//! finds the public deque full puts the in-flight item back at the private
//! front — order intact, nothing dropped — so the steal-conservation
//! invariant (`spawns == fast_pops + steals + own_takes`) survives
//! overflow. The fast path itself — the private ring's `push_back` /
//! `pop_back` — contains no shared atomic at all, which nowa-lint R5
//! enforces via the `// lint: hot-path private` marker.

use core::cell::Cell;
use core::marker::PhantomData;
use core::num::NonZeroU64;
use std::sync::Arc;

use crate::sync::{AtomicU64, Ordering};
use crate::{Full, Steal, StealerOps, Token, WorkerOps};

/// Tuning knobs of the split layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitConfig {
    /// When `false`, the layer is a pass-through to the wrapped deque:
    /// every push goes straight to the public end (the pre-split
    /// behaviour, kept for the `nowa-bench spawn` ablation).
    pub enabled: bool,
    /// Batch-boundary period: every `promote_batch` private pushes the
    /// owner promotes its surplus even without a hunger signal, bounding
    /// how long work can stay invisible to thieves.
    pub promote_batch: usize,
    /// When issuing a targeted wake after a promotion, promote up to a
    /// full extra batch first so the woken thief finds ample public work
    /// instead of immediately re-signalling hunger.
    pub promote_on_wake: bool,
}

impl Default for SplitConfig {
    fn default() -> SplitConfig {
        SplitConfig {
            enabled: true,
            promote_batch: 8,
            promote_on_wake: true,
        }
    }
}

impl SplitConfig {
    /// The pass-through configuration (split layer off).
    pub fn disabled() -> SplitConfig {
        SplitConfig {
            enabled: false,
            ..SplitConfig::default()
        }
    }
}

/// Owner/thief shared state: one cache line holding the hunger flag.
#[repr(align(128))]
struct SplitShared {
    /// Set (`Relaxed`) by a thief that found the public deque empty;
    /// cleared (`Relaxed`) by the owner when it promotes. Advisory only —
    /// see the module docs and DESIGN.md §7b.
    hungry: AtomicU64,
}

/// The owner-private unsynchronized segment: a power-of-two ring of raw
/// token words with monotonically growing head/tail indices. No atomics,
/// no fences — the owner is the only party that ever touches it.
struct PrivateRing {
    slots: Box<[Cell<u64>]>,
    mask: usize,
    /// Oldest item (promotion end). Grows monotonically; wraps via `mask`.
    head: Cell<usize>,
    /// One past the newest item (owner push/pop end).
    tail: Cell<usize>,
}

impl PrivateRing {
    fn new(capacity: usize) -> PrivateRing {
        let cap = capacity.clamp(2, 1024).next_power_of_two();
        PrivateRing {
            slots: (0..cap).map(|_| Cell::new(0)).collect(),
            mask: cap - 1,
            head: Cell::new(0),
            tail: Cell::new(0),
        }
    }

    /// Appends the newest item. Fails (ring full) without side effects.
    // lint: hot-path private
    #[inline(always)]
    fn push_back(&self, word: u64) -> bool {
        let tail = self.tail.get();
        if tail.wrapping_sub(self.head.get()) > self.mask {
            return false;
        }
        self.slots[tail & self.mask].set(word);
        self.tail.set(tail.wrapping_add(1));
        true
    }

    /// Removes and returns the newest item (the owner's LIFO end).
    // lint: hot-path private
    #[inline(always)]
    fn pop_back(&self) -> Option<u64> {
        let tail = self.tail.get();
        if self.head.get() == tail {
            return None;
        }
        let tail = tail.wrapping_sub(1);
        self.tail.set(tail);
        Some(self.slots[tail & self.mask].get())
    }

    /// Removes and returns the oldest item (the promotion end).
    fn pop_front(&self) -> Option<u64> {
        let head = self.head.get();
        if head == self.tail.get() {
            return None;
        }
        self.head.set(head.wrapping_add(1));
        Some(self.slots[head & self.mask].get())
    }

    /// Reinserts an item at the oldest end (promotion put-back). Fails
    /// (ring full) without side effects; never fails directly after a
    /// [`pop_front`](Self::pop_front) freed the slot.
    fn push_front(&self, word: u64) -> bool {
        let head = self.head.get();
        if self.tail.get().wrapping_sub(head) > self.mask {
            return false;
        }
        let head = head.wrapping_sub(1);
        self.slots[head & self.mask].set(word);
        self.head.set(head);
        true
    }

    fn len(&self) -> usize {
        self.tail.get().wrapping_sub(self.head.get())
    }
}

/// Result of a [`SplitWorker::push_spawn`]: how many private items this
/// push moved to the public deque (0 on the pure fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitPush {
    /// Items promoted private → public as a side effect of this push.
    pub promoted: u32,
}

/// Factory for the split layer, named like the deque family types.
pub struct SplitDeque;

impl SplitDeque {
    /// Wraps a flavor's `(worker, stealer)` pair in the split layer.
    /// `capacity` sizes the private ring (clamped to a sane power of two;
    /// overflow promotes, so a small ring costs throughput, not
    /// correctness).
    pub fn wrap<T: Token, W: WorkerOps<T>, S: StealerOps<T>>(
        worker: W,
        stealer: S,
        cfg: SplitConfig,
        capacity: usize,
    ) -> (SplitWorker<W, T>, SplitStealer<S>) {
        let shared = Arc::new(SplitShared {
            hungry: AtomicU64::new(0),
        });
        (
            SplitWorker {
                inner: worker,
                ring: PrivateRing::new(capacity),
                since: Cell::new(0),
                last_private: Cell::new(false),
                cfg,
                shared: Arc::clone(&shared),
                _items: PhantomData,
            },
            SplitStealer {
                inner: stealer,
                shared,
            },
        )
    }
}

/// Owner-side handle of a split deque: the wrapped flavor's worker end
/// plus the private segment. `Send` but, like every worker handle, not
/// `Sync` (the `Cell`s see to that).
pub struct SplitWorker<W, T> {
    inner: W,
    ring: PrivateRing,
    /// Private pushes since the last promotion (batch-boundary counter).
    since: Cell<usize>,
    /// Whether the most recent successful `pop` came from the private
    /// segment (feeds the `private_pops` statistic).
    last_private: Cell<bool>,
    cfg: SplitConfig,
    shared: Arc<SplitShared>,
    _items: PhantomData<T>,
}

impl<W: WorkerOps<T>, T: Token> SplitWorker<W, T> {
    /// Pushes a spawned continuation, reporting promotion side effects.
    ///
    /// The common case writes one private ring slot and probes the hunger
    /// flag with a single read-only `Relaxed` load — zero shared stores,
    /// RMWs or fences. On a batch boundary the owner promotes its surplus
    /// (keeping the item it is about to pop back, so a tight spawn→pop
    /// loop promotes nothing); on a hunger signal it promotes immediately
    /// and keeps nothing back. `Err(Full)` means both segments are full —
    /// the caller runs the child inline, exactly as for an unsplit full
    /// deque.
    // lint: hot-path
    #[inline]
    pub fn push_spawn(&self, item: T) -> Result<SplitPush, Full<T>> {
        if !self.cfg.enabled {
            // lint: allow(R5) — pass-through to the wrapped deque's own audited push
            return self.inner.push(item).map(|()| SplitPush { promoted: 0 });
        }
        let word = item.into_word().get();
        if !self.ring.push_back(word) {
            // Private segment full: drain a batch into the public deque to
            // make room. If the public side is full too, report Full.
            let promoted = self.promote(self.cfg.promote_batch.max(1));
            if promoted == 0 || !self.ring.push_back(word) {
                return Err(Full(item));
            }
            self.since.set(0);
            return Ok(SplitPush {
                promoted: promoted as u32,
            });
        }
        let since = self.since.get() + 1;
        let hungry = self.shared.hungry.load(Ordering::Relaxed) != 0;
        if !hungry && since < self.cfg.promote_batch.max(1) {
            self.since.set(since);
            return Ok(SplitPush { promoted: 0 });
        }
        self.since.set(0);
        if hungry {
            self.shared.hungry.store(0, Ordering::Relaxed);
        }
        let keep = usize::from(!hungry);
        let avail = self.ring.len().saturating_sub(keep);
        let promoted = if avail == 0 {
            0
        } else {
            self.promote(avail.min(self.cfg.promote_batch.max(1)))
        };
        Ok(SplitPush {
            promoted: promoted as u32,
        })
    }

    /// Promotes up to `max` private items regardless of hunger or batch
    /// state, clearing the hunger flag. Returns the number moved. Used by
    /// the wake path ([`SplitConfig::promote_on_wake`]) and the chaos
    /// `ForcePromote` site.
    pub fn force_promote(&self, max: usize) -> usize {
        if !self.cfg.enabled {
            return 0;
        }
        self.shared.hungry.store(0, Ordering::Relaxed);
        self.since.set(0);
        self.promote(max)
    }

    /// Moves up to `max` of the *oldest* private items into the public
    /// deque, preserving FIFO order for thieves. When the public deque is
    /// full (or a chaos-forced promotion failure fires), the in-flight
    /// item goes back to the private front and the batch stops early —
    /// promotion never drops or reorders a continuation.
    fn promote(&self, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            let Some(word) = self.ring.pop_front() else {
                break;
            };
            #[cfg(feature = "chaos")]
            if crate::chaos::take_promotion_failure() {
                let restored = self.ring.push_front(word);
                debug_assert!(restored, "put-back into a slot just freed");
                break;
            }
            let item = T::from_word(nonzero(word));
            match self.inner.push(item) {
                Ok(()) => moved += 1,
                Err(Full(item)) => {
                    let restored = self.ring.push_front(item.into_word().get());
                    debug_assert!(restored, "put-back into a slot just freed");
                    break;
                }
            }
        }
        moved
    }

    /// Items visible to thieves (the wrapped deque only).
    pub fn public_len(&self) -> usize {
        self.inner.len()
    }

    /// Items hidden in the private segment.
    pub fn private_len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the most recent successful [`pop`](WorkerOps::pop) was
    /// served by the private segment (no shared synchronization at all).
    pub fn last_pop_was_private(&self) -> bool {
        self.last_private.get()
    }

    /// The layer's configuration.
    pub fn config(&self) -> &SplitConfig {
        &self.cfg
    }

    /// The wrapped flavor's worker handle.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Racy snapshot of the hunger flag (diagnostics/tests).
    pub fn hungry_flag(&self) -> bool {
        self.shared.hungry.load(Ordering::Relaxed) != 0
    }
}

/// Words in the ring were produced by [`Token::into_word`], hence nonzero.
#[inline(always)]
fn nonzero(word: u64) -> NonZeroU64 {
    NonZeroU64::new(word).expect("private ring holds token words, which are nonzero")
}

impl<T: Token, W: WorkerOps<T>> WorkerOps<T> for SplitWorker<W, T> {
    /// [`push_spawn`](SplitWorker::push_spawn) with the promotion count
    /// dropped (trait-generic callers).
    // lint: hot-path
    #[inline]
    fn push(&self, item: T) -> Result<(), Full<T>> {
        self.push_spawn(item).map(|_| ())
    }

    /// Pops the globally newest item: the private tail when non-empty
    /// (fence-free fast path), the wrapped deque's bottom otherwise.
    // lint: hot-path
    #[inline]
    fn pop(&self) -> Option<T> {
        if self.cfg.enabled {
            if let Some(word) = self.ring.pop_back() {
                self.last_private.set(true);
                return Some(T::from_word(nonzero(word)));
            }
        }
        self.last_private.set(false);
        self.inner.pop()
    }

    fn len(&self) -> usize {
        self.ring.len() + self.inner.len()
    }
}

/// Thief-side handle of a split deque: the wrapped flavor's stealer end
/// plus the hunger signal.
pub struct SplitStealer<S> {
    inner: S,
    shared: Arc<SplitShared>,
}

impl<S: Clone> Clone for SplitStealer<S> {
    fn clone(&self) -> SplitStealer<S> {
        SplitStealer {
            inner: self.inner.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S> SplitStealer<S> {
    /// The wrapped flavor's stealer handle.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<T: Token, S: StealerOps<T>> StealerOps<T> for SplitStealer<S> {
    /// Steals from the public deque. Observing it empty raises the hunger
    /// flag so the owner's next push promotes instead of letting the
    /// thief starve against a full private segment.
    // lint: hot-path
    #[inline]
    fn steal(&self) -> Steal<T> {
        match self.inner.steal() {
            Steal::Empty => {
                self.shared.hungry.store(1, Ordering::Relaxed);
                Steal::Empty
            }
            other => other,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::{ClDeque, TheDeque};

    type ClSplit = (
        SplitWorker<crate::ClWorker<usize>, usize>,
        SplitStealer<crate::ClStealer<usize>>,
    );

    fn cl_split(cfg: SplitConfig) -> ClSplit {
        let (w, s) = ClDeque::<usize>::new(64);
        SplitDeque::wrap(w, s, cfg, 64)
    }

    #[test]
    fn fast_path_stays_private_until_batch_boundary() {
        let cfg = SplitConfig {
            promote_batch: 4,
            ..SplitConfig::default()
        };
        let (w, s) = cl_split(cfg);
        for i in 1..=3 {
            assert_eq!(w.push_spawn(i).unwrap().promoted, 0);
        }
        assert_eq!(w.private_len(), 3);
        assert_eq!(w.public_len(), 0);
        assert_eq!(s.inner().len(), 0, "nothing visible to thieves yet");
        // 4th push is the batch boundary: promote all but one.
        assert_eq!(w.push_spawn(4).unwrap().promoted, 3);
        assert_eq!(w.private_len(), 1);
        assert_eq!(w.public_len(), 3);
    }

    #[test]
    fn order_is_globally_fifo_for_thieves_lifo_for_owner() {
        let cfg = SplitConfig {
            promote_batch: 2,
            ..SplitConfig::default()
        };
        let (w, s) = cl_split(cfg);
        for i in 1..=5 {
            w.push_spawn(i).unwrap();
        }
        // Thieves drain oldest-first from the public deque.
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal(), Steal::Success(2));
        // Owner drains newest-first across both segments.
        let mut owner: Vec<usize> = core::iter::from_fn(|| w.pop()).collect();
        assert_eq!(owner.remove(0), 5, "private tail is globally newest");
        assert_eq!(owner, vec![4, 3]);
    }

    #[test]
    fn hunger_promotes_on_next_push() {
        let cfg = SplitConfig {
            promote_batch: 1024,
            ..SplitConfig::default()
        };
        let (w, s) = cl_split(cfg);
        w.push_spawn(1).unwrap();
        assert_eq!(s.steal(), Steal::Empty, "item still private");
        assert!(w.hungry_flag(), "empty observation raised hunger");
        // The very next push promotes everything, far from any boundary.
        let r = w.push_spawn(2).unwrap();
        assert_eq!(r.promoted, 2, "hungry promotion keeps nothing back");
        assert!(!w.hungry_flag());
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal(), Steal::Success(2));
    }

    #[test]
    fn pop_reports_private_vs_public_origin() {
        let cfg = SplitConfig {
            promote_batch: 2,
            ..SplitConfig::default()
        };
        let (w, _s) = cl_split(cfg);
        w.push_spawn(1).unwrap();
        w.push_spawn(2).unwrap(); // boundary: promotes item 1
        assert_eq!(w.pop(), Some(2));
        assert!(w.last_pop_was_private());
        assert_eq!(w.pop(), Some(1));
        assert!(!w.last_pop_was_private(), "drained from the public deque");
    }

    #[test]
    fn public_overflow_puts_item_back_and_preserves_order() {
        // THE deque with capacity 2: promotion hits Full quickly.
        let (w, s) = TheDeque::<usize>::new(2);
        let cfg = SplitConfig {
            promote_batch: 8,
            ..SplitConfig::default()
        };
        let (w, s) = SplitDeque::wrap(w, s, cfg, 8);
        for i in 1..=7 {
            w.push_spawn(i).unwrap();
        }
        assert!(
            w.force_promote(usize::MAX) <= 2,
            "public capacity caps the batch"
        );
        let total = w.private_len() + w.public_len();
        assert_eq!(total, 7, "overflow promotion dropped nothing");
        // Thieves still see the globally oldest first.
        assert_eq!(s.steal(), Steal::Success(1));
        // Everything drains exactly once across both ends.
        let mut got: Vec<usize> = core::iter::from_fn(|| w.pop()).collect();
        while let Steal::Success(v) = s.steal() {
            got.push(v);
        }
        // force_promote may interleave leftovers; compare as sets.
        got.sort_unstable();
        assert_eq!(got, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn private_ring_overflow_promotes_to_make_room() {
        let (w, s) = ClDeque::<usize>::new(8);
        let cfg = SplitConfig {
            promote_batch: 1 << 20, // no boundary promotion in this test
            ..SplitConfig::default()
        };
        let (w, _s) = SplitDeque::wrap(w, s, cfg, 2);
        w.push_spawn(1).unwrap();
        w.push_spawn(2).unwrap();
        // Ring (capacity 2) is full: the next push drains it publicly.
        let r = w.push_spawn(3).unwrap();
        assert!(r.promoted > 0, "overflow forced a promotion");
        assert_eq!(w.private_len() + w.public_len(), 3);
    }

    #[test]
    fn disabled_split_is_a_pass_through() {
        let (w, s) = cl_split(SplitConfig::disabled());
        for i in 1..=10 {
            assert_eq!(w.push_spawn(i).unwrap().promoted, 0);
        }
        assert_eq!(w.private_len(), 0);
        assert_eq!(w.public_len(), 10);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(10));
        assert!(!w.last_pop_was_private());
        assert_eq!(w.force_promote(usize::MAX), 0);
    }

    #[test]
    fn ring_indices_survive_wraparound() {
        let cfg = SplitConfig {
            promote_batch: 1 << 20,
            ..SplitConfig::default()
        };
        let (w, s) = ClDeque::<usize>::new(8);
        let (w, _s) = SplitDeque::wrap(w, s, cfg, 4);
        for round in 0..1000usize {
            let base = round * 3 + 1;
            w.push_spawn(base).unwrap();
            w.push_spawn(base + 1).unwrap();
            assert_eq!(w.pop(), Some(base + 1));
            assert_eq!(w.pop(), Some(base));
            assert_eq!(w.pop(), None);
        }
        assert_eq!(w.private_len(), 0);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn forced_promotion_failure_keeps_items_private() {
        let cfg = SplitConfig {
            promote_batch: 4,
            ..SplitConfig::default()
        };
        let (w, s) = cl_split(cfg);
        for i in 1..=3 {
            w.push_spawn(i).unwrap();
        }
        crate::chaos::force_promotion_failure();
        // Boundary push: the armed failure stops the batch before moving
        // anything; all four items stay private.
        assert_eq!(w.push_spawn(4).unwrap().promoted, 0);
        assert_eq!(w.private_len(), 4);
        assert_eq!(w.public_len(), 0);
        // The force is consumed: a manual promotion now succeeds.
        assert_eq!(w.force_promote(2), 2);
        assert_eq!(s.steal(), Steal::Success(1));
    }
}
