//! The Cilk-5 THE (Tail, Head, Exception) work-stealing deque.
//!
//! M. Frigo, C. E. Leiserson, K. H. Randall, *The implementation of the
//! Cilk-5 multithreaded language*, PLDI 1998. This is the queue used by
//! Fibril and (in spirit) by Cilk Plus; the Nowa paper's §V-C ablation swaps
//! it against the Chase–Lev queue.
//!
//! Protocol summary (Dijkstra-style mutual exclusion between one owner and
//! the lock-holding thief):
//!
//! * Items live at indices `[head, tail)` of a bounded buffer.
//! * `push` (owner): write slot at `tail`, then advance `tail` (release).
//! * `pop` (owner): optimistically decrement `tail`, fence, read `head`; on
//!   conflict (`head > tail`) retreat, take the lock, and retry once under
//!   the lock. The lock is *elided* whenever the ends do not conflict.
//! * `steal` (thief): always takes the lock (steals on the same deque are
//!   serialized — this is the partially-locked aspect that limits
//!   scalability at high thread counts), optimistically increments `head`,
//!   fences, checks against `tail`, retreats on conflict.
//!
//! When the deque is observed empty under the lock, both indices are reset
//! to zero so the bounded buffer can be reused indefinitely.

use core::cell::Cell;
use core::marker::PhantomData;
use core::num::NonZeroU64;
use std::sync::Arc;

use crate::sync::{fence, AtomicI64, AtomicU64, Ordering};

use crate::sync::Mutex;
use crate::{Full, Steal, StealerOps, Token, WorkerOps};

struct Inner {
    /// Thief index (the paper's *H*). Only modified under `lock`.
    head: AtomicI64,
    /// Owner index (the paper's *T*).
    tail: AtomicI64,
    /// Serializes thieves against each other and against the conflicting
    /// owner pop.
    lock: Mutex<()>,
    slots: Box<[AtomicU64]>,
}

impl Inner {
    #[inline]
    fn slot(&self, index: i64) -> &AtomicU64 {
        &self.slots[index as usize]
    }
}

/// Constructor namespace for the THE deque.
pub struct TheDeque<T>(PhantomData<T>);

impl<T: Token> TheDeque<T> {
    /// Creates a bounded THE deque holding at most `capacity` items.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the handle pair
    pub fn new(capacity: usize) -> (TheWorker<T>, TheStealer<T>) {
        let capacity = capacity.max(2);
        let inner = Arc::new(Inner {
            head: AtomicI64::new(0),
            tail: AtomicI64::new(0),
            lock: Mutex::new(()),
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        });
        (
            TheWorker {
                inner: inner.clone(),
                _not_sync: PhantomData,
                _items: PhantomData,
            },
            TheStealer {
                inner,
                _items: PhantomData,
            },
        )
    }
}

/// Owner-side handle of a [`TheDeque`].
pub struct TheWorker<T> {
    inner: Arc<Inner>,
    _not_sync: PhantomData<Cell<()>>,
    _items: PhantomData<T>,
}

/// Thief-side handle of a [`TheDeque`].
pub struct TheStealer<T> {
    inner: Arc<Inner>,
    _items: PhantomData<T>,
}

impl<T> Clone for TheStealer<T> {
    fn clone(&self) -> Self {
        TheStealer {
            inner: self.inner.clone(),
            _items: PhantomData,
        }
    }
}

unsafe impl<T: Token> Send for TheWorker<T> {}
unsafe impl<T: Token> Send for TheStealer<T> {}
unsafe impl<T: Token> Sync for TheStealer<T> {}

impl<T: Token> WorkerOps<T> for TheWorker<T> {
    #[inline]
    // lint: hot-path
    fn push(&self, item: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let t = inner.tail.load(Ordering::Relaxed);
        if t as usize >= inner.slots.len() {
            // The buffer has run off its end. Compact under the lock by
            // resetting indices if the deque drained, otherwise report Full.
            let _guard = inner.lock.lock();
            let h = inner.head.load(Ordering::Relaxed);
            if h == t {
                inner.head.store(0, Ordering::Relaxed);
                inner.tail.store(0, Ordering::Relaxed);
            } else if h > 0 {
                // Slide the live range [h, t) down to index 0.
                for (dst, src) in (h..t).enumerate() {
                    let word = inner.slot(src).load(Ordering::Relaxed);
                    inner.slots[dst].store(word, Ordering::Relaxed);
                }
                inner.head.store(0, Ordering::Relaxed);
                inner.tail.store(t - h, Ordering::Relaxed);
            } else {
                return Err(Full(item));
            }
            drop(_guard);
            return self.push(item);
        }
        inner
            .slot(t)
            .store(item.into_word().get(), Ordering::Relaxed);
        inner.tail.store(t + 1, Ordering::Release);
        Ok(())
    }

    #[inline]
    // lint: hot-path
    fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        // Optimistic Dijkstra-style retreat protocol.
        let t = inner.tail.load(Ordering::Relaxed) - 1;
        inner.tail.store(t, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let h = inner.head.load(Ordering::Relaxed);
        if h > t {
            // Conflict: retreat and arbitrate under the lock.
            inner.tail.store(t + 1, Ordering::Relaxed);
            let _guard = inner.lock.lock();
            let h = inner.head.load(Ordering::Relaxed);
            if h > t {
                // The thief won the element (or the deque is empty).
                // Reset the drained deque for buffer reuse.
                inner.head.store(0, Ordering::Relaxed);
                inner.tail.store(0, Ordering::Relaxed);
                return None;
            }
            inner.tail.store(t, Ordering::Relaxed);
        }
        let word = inner.slot(t).load(Ordering::Relaxed);
        let word = NonZeroU64::new(word).expect("THE slot in live range holds an item");
        Some(T::from_word(word))
    }

    fn len(&self) -> usize {
        let t = self.inner.tail.load(Ordering::Relaxed);
        let h = self.inner.head.load(Ordering::Relaxed);
        (t - h).max(0) as usize
    }
}

impl<T: Token> StealerOps<T> for TheStealer<T> {
    #[inline]
    // lint: hot-path
    fn steal(&self) -> Steal<T> {
        #[cfg(feature = "chaos")]
        if let Some(forced) = crate::chaos::take_forced() {
            return forced.as_steal();
        }
        let inner = &*self.inner;
        // Cheap unsynchronized emptiness probe before paying for the lock.
        // Relaxed on both sides: the probe only gates the lock acquisition —
        // a stale miss is a legitimate Empty (the steal linearizes at the
        // locked re-read below, which carries the Acquire that pairs with
        // push's Release tail store). Verified by the loom models in
        // tests/loom.rs (`the_single_item_owner_thief_race`).
        if inner.head.load(Ordering::Relaxed) >= inner.tail.load(Ordering::Relaxed) {
            return Steal::Empty;
        }
        let _guard = inner.lock.lock();
        let h = inner.head.load(Ordering::Relaxed);
        inner.head.store(h + 1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.tail.load(Ordering::Acquire);
        if h + 1 > t {
            // Conflict with the owner: retreat.
            inner.head.store(h, Ordering::Relaxed);
            return Steal::Empty;
        }
        let word = inner.slot(h).load(Ordering::Relaxed);
        let word = NonZeroU64::new(word).expect("THE slot in live range holds an item");
        Steal::Success(T::from_word(word))
    }
}

impl<T: Token> TheStealer<T> {
    /// A racy snapshot of the number of enqueued items.
    pub fn len(&self) -> usize {
        let t = self.inner.tail.load(Ordering::Relaxed);
        let h = self.inner.head.load(Ordering::Relaxed);
        (t - h).max(0) as usize
    }

    /// True if the snapshot observed no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_bottom_fifo_top() {
        let (w, s) = TheDeque::<usize>::new(8);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn reset_on_empty_allows_reuse() {
        let (w, s) = TheDeque::<usize>::new(4);
        // Far more operations than the capacity — relies on the drain reset.
        for round in 0..1000 {
            w.push(round).unwrap();
            assert_eq!(w.pop(), Some(round));
            assert_eq!(w.pop(), None); // triggers reset
        }
        for round in 0..1000 {
            w.push(round).unwrap();
            assert_eq!(s.steal(), Steal::Success(round));
            assert!(s.steal().is_empty()); // steals do not reset; pop path does
            assert_eq!(w.pop(), None);
        }
    }

    #[test]
    fn compaction_slides_live_range() {
        let (w, s) = TheDeque::<usize>::new(4);
        w.push(0).unwrap();
        w.push(1).unwrap();
        w.push(2).unwrap();
        w.push(3).unwrap();
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        // tail == capacity but head == 2: push must compact, not fail.
        w.push(4).unwrap();
        w.push(5).unwrap();
        assert_eq!(w.pop(), Some(5));
        assert_eq!(w.pop(), Some(4));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn full_when_live_range_fills_buffer() {
        let (w, _s) = TheDeque::<usize>::new(2);
        w.push(0).unwrap();
        w.push(1).unwrap();
        assert_eq!(w.push(2), Err(Full(2)));
    }

    #[test]
    fn len_reports_live_range() {
        let (w, s) = TheDeque::<usize>::new(8);
        assert!(w.is_empty());
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(s.len(), 2);
        let _ = s.steal();
        assert_eq!(w.len(), 1);
    }
}
