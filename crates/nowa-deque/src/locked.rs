//! A fully mutex-protected work-stealing deque.
//!
//! Every operation — including the owner's `push`/`pop` — takes the same
//! lock. This is the degenerate baseline that lock-based runtime layers
//! reduce to (cf. Listing 2 of the Nowa paper, where Fibril locks the
//! victim's deque around `steal()`); it is used by the `lock-cont` runtime
//! flavor and as a correctness oracle in the deque stress tests.

use core::cell::Cell;
use core::marker::PhantomData;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Full, Steal, StealerOps, Token, WorkerOps};

struct Inner<T> {
    items: Mutex<VecDeque<T>>,
}

/// Constructor namespace for the locked deque.
pub struct LockedDeque<T>(PhantomData<T>);

impl<T: Token> LockedDeque<T> {
    /// Creates an unbounded locked deque (the capacity hint pre-allocates).
    #[allow(clippy::new_ret_no_self)] // deliberately returns the handle pair
    pub fn new(capacity: usize) -> (LockedWorker<T>, LockedStealer<T>) {
        let inner = Arc::new(Inner {
            items: Mutex::new(VecDeque::with_capacity(capacity)),
        });
        (
            LockedWorker {
                inner: inner.clone(),
                _not_sync: PhantomData,
            },
            LockedStealer { inner },
        )
    }
}

/// Owner-side handle of a [`LockedDeque`].
pub struct LockedWorker<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Thief-side handle of a [`LockedDeque`].
pub struct LockedStealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for LockedStealer<T> {
    fn clone(&self) -> Self {
        LockedStealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Token> WorkerOps<T> for LockedWorker<T> {
    fn push(&self, item: T) -> Result<(), Full<T>> {
        self.inner.items.lock().push_back(item);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        self.inner.items.lock().pop_back()
    }

    fn len(&self) -> usize {
        self.inner.items.lock().len()
    }
}

impl<T: Token> StealerOps<T> for LockedStealer<T> {
    fn steal(&self) -> Steal<T> {
        #[cfg(feature = "chaos")]
        if let Some(forced) = crate::chaos::take_forced() {
            return forced.as_steal();
        }
        match self.inner.items.lock().pop_front() {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }
}

impl<T: Token> LockedStealer<T> {
    /// The exact number of enqueued items (taken under the lock).
    pub fn len(&self) -> usize {
        self.inner.items.lock().len()
    }

    /// True if the queue is empty (taken under the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_bottom_fifo_top() {
        let (w, s) = LockedDeque::<usize>::new(4);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn unbounded_growth() {
        let (w, _s) = LockedDeque::<usize>::new(2);
        for i in 0..10_000 {
            w.push(i).unwrap();
        }
        assert_eq!(w.len(), 10_000);
    }
}
