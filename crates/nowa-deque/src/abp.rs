//! The Arora–Blumofe–Plaxton non-blocking work-stealing deque.
//!
//! N. S. Arora, R. D. Blumofe, C. G. Plaxton, *Thread scheduling for
//! multiprogrammed multiprocessors*, SPAA 1998.
//!
//! The top end is guarded by an `age` word packing `(tag, top)`; thieves
//! claim items with a single CAS on `age`, the owner's `pop` needs a CAS
//! only when it races for the last item. The buffer is **not** a ring:
//! `push` and `steal` only ever increment their indices, so space freed by
//! steals is unusable until the owner drains the deque and resets the
//! indices — the dynamically-shrinking effective capacity that §II-D of the
//! Nowa paper holds against this algorithm (and that the Chase–Lev deque
//! fixes with its 64-bit ring counters).

use core::cell::Cell;
use core::marker::PhantomData;
use core::num::NonZeroU64;
use std::sync::Arc;

use crate::sync::{fence, AtomicI64, AtomicU64, Ordering};

use crate::{Full, Steal, StealerOps, Token, WorkerOps};

/// `age` layout: high 32 bits = tag (steal generation), low 32 bits = top.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Age(u64);

impl Age {
    #[inline]
    fn new(tag: u32, top: u32) -> Age {
        Age(((tag as u64) << 32) | top as u64)
    }
    #[inline]
    fn tag(self) -> u32 {
        (self.0 >> 32) as u32
    }
    #[inline]
    fn top(self) -> u32 {
        self.0 as u32
    }
}

struct Inner {
    age: AtomicU64,
    /// Owner's index; thieves read it to detect emptiness.
    bot: AtomicI64,
    slots: Box<[AtomicU64]>,
}

/// Constructor namespace for the ABP deque.
pub struct AbpDeque<T>(PhantomData<T>);

impl<T: Token> AbpDeque<T> {
    /// Creates a bounded ABP deque holding at most `capacity` items.
    #[allow(clippy::new_ret_no_self)] // deliberately returns the handle pair
    pub fn new(capacity: usize) -> (AbpWorker<T>, AbpStealer<T>) {
        let capacity = capacity.max(2);
        assert!(capacity < u32::MAX as usize, "ABP index space is 32-bit");
        let inner = Arc::new(Inner {
            age: AtomicU64::new(Age::new(0, 0).0),
            bot: AtomicI64::new(0),
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        });
        (
            AbpWorker {
                inner: inner.clone(),
                _not_sync: PhantomData,
                _items: PhantomData,
            },
            AbpStealer {
                inner,
                _items: PhantomData,
            },
        )
    }
}

/// Owner-side handle of an [`AbpDeque`].
pub struct AbpWorker<T> {
    inner: Arc<Inner>,
    _not_sync: PhantomData<Cell<()>>,
    _items: PhantomData<T>,
}

/// Thief-side handle of an [`AbpDeque`].
pub struct AbpStealer<T> {
    inner: Arc<Inner>,
    _items: PhantomData<T>,
}

impl<T> Clone for AbpStealer<T> {
    fn clone(&self) -> Self {
        AbpStealer {
            inner: self.inner.clone(),
            _items: PhantomData,
        }
    }
}

unsafe impl<T: Token> Send for AbpWorker<T> {}
unsafe impl<T: Token> Send for AbpStealer<T> {}
unsafe impl<T: Token> Sync for AbpStealer<T> {}

impl<T: Token> WorkerOps<T> for AbpWorker<T> {
    #[inline]
    // lint: hot-path
    fn push(&self, item: T) -> Result<(), Full<T>> {
        let inner = &*self.inner;
        let b = inner.bot.load(Ordering::Relaxed);
        if b as usize >= inner.slots.len() {
            // The non-ring buffer ran off its end (§II-D: the effective
            // capacity shrank because steals freed space at the front that
            // cannot be reused).
            return Err(Full(item));
        }
        inner.slots[b as usize].store(item.into_word().get(), Ordering::Relaxed);
        inner.bot.store(b + 1, Ordering::Release);
        Ok(())
    }

    #[inline]
    // lint: hot-path
    fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bot.load(Ordering::Relaxed);
        if b == 0 {
            return None;
        }
        let b = b - 1;
        inner.bot.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let word = inner.slots[b as usize].load(Ordering::Relaxed);
        let old = Age(inner.age.load(Ordering::Relaxed));
        if b > old.top() as i64 {
            // No possible conflict with thieves.
            let word = NonZeroU64::new(word).expect("ABP slot in live range holds an item");
            return Some(T::from_word(word));
        }
        // Zero or one items left: reset bottom and race via `age`.
        inner.bot.store(0, Ordering::Relaxed);
        let fresh = Age::new(old.tag().wrapping_add(1), 0);
        if b == old.top() as i64 {
            // Exactly one item: claim it against concurrent thieves.
            if inner
                .age
                .compare_exchange(old.0, fresh.0, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                let word = NonZeroU64::new(word).expect("claimed ABP slot holds an item");
                return Some(T::from_word(word));
            }
        }
        // Lost the race (or the deque was already empty): install the reset
        // age so future pushes start from index 0 again.
        inner.age.store(fresh.0, Ordering::SeqCst);
        None
    }

    fn len(&self) -> usize {
        let b = self.inner.bot.load(Ordering::Relaxed);
        let t = Age(self.inner.age.load(Ordering::Relaxed)).top() as i64;
        (b - t).max(0) as usize
    }
}

impl<T: Token> StealerOps<T> for AbpStealer<T> {
    #[inline]
    // lint: hot-path
    fn steal(&self) -> Steal<T> {
        #[cfg(feature = "chaos")]
        if let Some(forced) = crate::chaos::take_forced() {
            return forced.as_steal();
        }
        let inner = &*self.inner;
        let old = Age(inner.age.load(Ordering::Acquire));
        let b = inner.bot.load(Ordering::Acquire);
        if b <= old.top() as i64 {
            return Steal::Empty;
        }
        let word = inner.slots[old.top() as usize].load(Ordering::Relaxed);
        let new = Age::new(old.tag(), old.top() + 1);
        if inner
            .age
            .compare_exchange(old.0, new.0, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            let word = NonZeroU64::new(word).expect("claimed ABP slot holds an item");
            Steal::Success(T::from_word(word))
        } else {
            Steal::Retry
        }
    }
}

impl<T: Token> AbpStealer<T> {
    /// A racy snapshot of the number of enqueued items.
    pub fn len(&self) -> usize {
        let b = self.inner.bot.load(Ordering::Relaxed);
        let t = Age(self.inner.age.load(Ordering::Relaxed)).top() as i64;
        (b - t).max(0) as usize
    }

    /// True if the snapshot observed no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_bottom_fifo_top() {
        let (w, s) = AbpDeque::<usize>::new(8);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn effective_capacity_shrinks_until_reset() {
        // §II-D: after steals, freed space is NOT reusable...
        let (w, s) = AbpDeque::<usize>::new(4);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        // Two slots are free but the deque reports Full.
        assert_eq!(w.push(9), Err(Full(9)));
        // ...until the owner drains it, which resets the indices.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        for i in 0..4 {
            w.push(10 + i).unwrap();
        }
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn single_item_owner_thief_race_is_exclusive() {
        let (w, s) = AbpDeque::<usize>::new(4);
        w.push(7).unwrap();
        assert_eq!(w.pop(), Some(7));
        assert!(s.steal().is_empty());
        // Tag advanced: a stale-age thief CAS can no longer succeed.
        w.push(8).unwrap();
        assert_eq!(s.steal(), Steal::Success(8));
    }

    #[test]
    fn pop_empty_is_none_and_cheap() {
        let (w, _s) = AbpDeque::<usize>::new(4);
        assert_eq!(w.pop(), None);
        assert_eq!(w.pop(), None);
        w.push(3).unwrap();
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn tag_wraps_without_panic() {
        let (w, _s) = AbpDeque::<usize>::new(2);
        // Exercise many resets; tag uses wrapping arithmetic.
        for i in 0..100_000 {
            w.push(i).unwrap();
            assert_eq!(w.pop(), Some(i));
        }
    }
}
