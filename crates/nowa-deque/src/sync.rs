//! cfg-twinned concurrency primitives (the `obs`/`chaos` zero-cost pattern,
//! applied to atomics).
//!
//! Normal builds re-export `core::sync::atomic` — this module compiles to
//! nothing. Under `RUSTFLAGS="--cfg loom"` the same names resolve to the
//! model-checked atomics from the vendored `loom` crate, so every deque
//! algorithm in this crate runs unmodified inside `loom::model` and its
//! memory orderings are explored exhaustively (see `tests/loom.rs`).
//!
//! Every atomic in this crate must go through this module; a direct
//! `core::sync::atomic` access would be invisible to the model checker and
//! silently weaken the models.

#[cfg(not(loom))]
pub(crate) use core::sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};

/// Spin-wait hint: a CPU pause normally, a model-scheduler yield under loom
/// (a modeled spin must cede the interleaving or it would livelock the
/// checker).
#[inline(always)]
pub(crate) fn busy_spin() {
    #[cfg(not(loom))]
    core::hint::spin_loop();
    #[cfg(loom)]
    loom::thread::yield_now();
}

#[cfg(not(loom))]
pub(crate) use parking_lot::Mutex;

// Cfg-twin parity: the loom arm defines a `MutexGuard` type, so the normal
// arm must export the same name even while no caller stores a guard in a
// typed binding yet.
#[allow(unused_imports)]
#[cfg(not(loom))]
pub(crate) use parking_lot::MutexGuard;

/// Under loom, a mutex the model checker can see: a spinlock over a loom
/// atomic. A real `parking_lot::Mutex` would still exclude threads in wall
/// time, but its acquire/release edges would be invisible to the model —
/// relaxed reads under the lock would be (wrongly) reported as able to see
/// stale values, as the THE deque's arbitration path demonstrated.
#[cfg(loom)]
pub(crate) struct Mutex<T> {
    locked: loom::sync::atomic::AtomicU32,
    data: core::cell::UnsafeCell<T>,
}

#[cfg(loom)]
unsafe impl<T: Send> Send for Mutex<T> {}
#[cfg(loom)]
unsafe impl<T: Send> Sync for Mutex<T> {}

#[cfg(loom)]
impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Mutex<T> {
        Mutex {
            locked: loom::sync::atomic::AtomicU32::new(0),
            data: core::cell::UnsafeCell::new(value),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        while self
            .locked
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            loom::thread::yield_now();
        }
        MutexGuard { lock: self }
    }

    pub(crate) fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

#[cfg(loom)]
pub(crate) struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

#[cfg(loom)]
impl<T> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the CAS in `lock` grants exclusive access until drop.
        unsafe { &*self.lock.data.get() }
    }
}

#[cfg(loom)]
impl<T> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

#[cfg(loom)]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(0, Ordering::Release);
    }
}
