//! Fault injection for the deque layer (compiled only with the `chaos`
//! cargo feature).
//!
//! A steal outcome can be *forced* on the calling thread: the next
//! [`StealerOps::steal`](crate::StealerOps::steal) on that thread returns
//! the forced [`Steal::Empty`] or [`Steal::Retry`] without touching the
//! victim deque. This exercises the thief-side failure semantics (lost
//! races, empty victims) deterministically — the runtime's chaos driver
//! decides *when* from a seeded counter, this module only delivers.
//!
//! The force is thread-local and consumed exactly once, so an injected
//! `Retry` cannot live-lock [`steal_retrying`](crate::StealerOps::steal_retrying):
//! the retry loop's next attempt hits the real deque.

use core::cell::Cell;

use crate::Steal;

/// A steal outcome to force, minus the success case (injection can only
/// *fail* steals; making up stolen items would corrupt the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedSteal {
    /// Report the victim as empty.
    Empty,
    /// Report a lost race, asking the thief to retry.
    Retry,
}

impl ForcedSteal {
    /// Converts to the equivalent [`Steal`] for any item type.
    pub fn as_steal<T>(self) -> Steal<T> {
        match self {
            ForcedSteal::Empty => Steal::Empty,
            ForcedSteal::Retry => Steal::Retry,
        }
    }
}

std::thread_local! {
    static FORCED: Cell<Option<ForcedSteal>> = const { Cell::new(None) };
    static PROMOTION_FAIL: Cell<bool> = const { Cell::new(false) };
}

/// Forces the next steal attempt on the calling thread to fail as `outcome`.
pub fn force_next_steal(outcome: ForcedSteal) {
    FORCED.with(|f| f.set(Some(outcome)));
}

/// Consumes a pending forced outcome, if any. Called at the top of every
/// `steal` implementation.
pub fn take_forced() -> Option<ForcedSteal> {
    FORCED.with(|f| f.take())
}

/// Forces the next private→public promotion batch on the calling thread to
/// fail before moving anything: the split layer's put-back path runs (the
/// in-flight item returns to the private front) and the batch stops, as if
/// the public deque had been full. Items are delayed, never lost — the
/// same contract as a real overflow.
pub fn force_promotion_failure() {
    PROMOTION_FAIL.with(|f| f.set(true));
}

/// Consumes a pending forced promotion failure, if any. Called by the
/// split layer's promotion loop per batch.
pub fn take_promotion_failure() -> bool {
    PROMOTION_FAIL.with(|f| f.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClDeque, StealerOps, WorkerOps};

    #[test]
    fn forced_outcome_consumed_once() {
        let (worker, stealer) = ClDeque::<usize>::new(8);
        worker.push(7).unwrap();
        force_next_steal(ForcedSteal::Empty);
        assert_eq!(stealer.steal(), Steal::Empty, "forced, despite the item");
        assert_eq!(stealer.steal(), Steal::Success(7), "force was consumed");
    }

    #[test]
    fn forced_retry_does_not_livelock_retry_loop() {
        let (worker, stealer) = ClDeque::<usize>::new(8);
        worker.push(9).unwrap();
        force_next_steal(ForcedSteal::Retry);
        assert_eq!(stealer.steal_retrying(), Some(9));
    }
}
