//! Machine-word tokens — the native element type of the deques.

use core::num::NonZeroU64;
use core::ptr::NonNull;

/// A value that fits in a non-zero machine word.
///
/// Work-stealing runtimes enqueue continuation pointers, so the deques in
/// this crate move raw 64-bit words stored in atomic slots. `Token` captures
/// the round-trip: `from_word(into_word(t)) == t`. The zero word is reserved
/// as the "empty slot" sentinel, which is why the representation is
/// [`NonZeroU64`].
///
/// # Safety
///
/// Implementations must guarantee that `from_word` is the exact inverse of
/// `into_word` for every value that `into_word` can produce. For pointer
/// types this means provenance is preserved only as far as an
/// address-round-trip allows; the deques only ever store words produced by
/// `into_word` and hand them back verbatim, never fabricating words.
pub unsafe trait Token: Copy + Send + 'static {
    /// Encodes `self` as a non-zero word.
    fn into_word(self) -> NonZeroU64;
    /// Decodes a word previously produced by [`into_word`](Self::into_word).
    fn from_word(word: NonZeroU64) -> Self;
}

unsafe impl Token for NonZeroU64 {
    #[inline]
    fn into_word(self) -> NonZeroU64 {
        self
    }
    #[inline]
    fn from_word(word: NonZeroU64) -> Self {
        word
    }
}

/// `usize` tokens are stored with a +1 bias so that `0` remains encodable
/// while the zero *word* stays reserved for empty slots.
unsafe impl Token for usize {
    #[inline]
    fn into_word(self) -> NonZeroU64 {
        NonZeroU64::new(self as u64 + 1).expect("usize token overflow")
    }
    #[inline]
    fn from_word(word: NonZeroU64) -> Self {
        (word.get() - 1) as usize
    }
}

/// `u64` tokens are stored with a +1 bias; `u64::MAX` is therefore not
/// encodable and panics on push.
unsafe impl Token for u64 {
    #[inline]
    fn into_word(self) -> NonZeroU64 {
        NonZeroU64::new(self.checked_add(1).expect("u64 token overflow")).unwrap()
    }
    #[inline]
    fn from_word(word: NonZeroU64) -> Self {
        word.get() - 1
    }
}

unsafe impl Token for u32 {
    #[inline]
    fn into_word(self) -> NonZeroU64 {
        NonZeroU64::new(self as u64 + 1).unwrap()
    }
    #[inline]
    fn from_word(word: NonZeroU64) -> Self {
        (word.get() - 1) as u32
    }
}

/// A raw non-null pointer token.
///
/// `NonNull<T>` itself is not `Send`, but work-stealing runtimes move frame
/// pointers between workers by design and uphold the aliasing discipline at
/// a higher level (a continuation pointer is owned by whoever dequeued it).
/// `Ptr` makes that transfer explicit.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Ptr<T>(pub NonNull<T>);

impl<T> Clone for Ptr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}

unsafe impl<T> Send for Ptr<T> {}

impl<T> Ptr<T> {
    /// Wraps a reference.
    pub fn from_ref(value: &T) -> Ptr<T> {
        Ptr(NonNull::from(value))
    }

    /// The wrapped raw pointer.
    pub fn as_ptr(self) -> *mut T {
        self.0.as_ptr()
    }
}

unsafe impl<T: 'static> Token for Ptr<T> {
    #[inline]
    fn into_word(self) -> NonZeroU64 {
        NonZeroU64::new(self.0.as_ptr() as usize as u64).expect("NonNull is non-zero")
    }
    #[inline]
    fn from_word(word: NonZeroU64) -> Self {
        Ptr(NonNull::new(word.get() as usize as *mut T).expect("word was non-zero"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_round_trip() {
        for v in [0usize, 1, 42, usize::MAX - 1] {
            assert_eq!(usize::from_word(v.into_word()), v);
        }
    }

    #[test]
    fn u32_round_trip() {
        for v in [0u32, 1, u32::MAX] {
            assert_eq!(u32::from_word(v.into_word()), v);
        }
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 7, u64::MAX - 1] {
            assert_eq!(u64::from_word(v.into_word()), v);
        }
    }

    #[test]
    #[should_panic(expected = "u64 token overflow")]
    fn u64_max_rejected() {
        let _ = u64::MAX.into_word();
    }

    #[test]
    fn ptr_round_trip() {
        static VALUE: i32 = 5;
        let ptr = Ptr::from_ref(&VALUE);
        let round = Ptr::<i32>::from_word(ptr.into_word());
        assert_eq!(round.as_ptr(), ptr.as_ptr());
    }

    #[test]
    fn non_zero_u64_identity() {
        let v = NonZeroU64::new(99).unwrap();
        assert_eq!(NonZeroU64::from_word(v.into_word()), v);
    }
}
