//! CLI entry point: `cargo run -p nowa-lint [-- --root <dir>]`.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use nowa_lint::{allow::Allowlist, run_lint, Workspace};

const ALLOWLIST_NAME: &str = "nowa-lint.allow";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "nowa-lint: project-specific concurrency lints (see DESIGN.md §7c)\n\
                     \n\
                     usage: nowa-lint [--root <workspace-dir>]\n\
                     \n\
                     Walks crates/*/src, parses the DESIGN.md §7b audit and the\n\
                     {ALLOWLIST_NAME} suppression file, and prints one\n\
                     `file:line: rule-id: message` per finding."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nowa-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "nowa-lint: no workspace root found (looked for DESIGN.md + crates/ \
                 upward from the current directory; pass --root)"
            );
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "nowa-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let allowlist = match std::fs::read_to_string(root.join(ALLOWLIST_NAME)) {
        Ok(text) => Allowlist::parse(ALLOWLIST_NAME, &text),
        Err(_) => Allowlist::default(),
    };

    let diags = run_lint(&ws, &allowlist);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "nowa-lint: clean — {} files, {} audit rows, {} allowlist entries",
            ws.files.len(),
            ws.audit.entries.len(),
            allowlist.entries.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("nowa-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Walks upward from the current directory to the workspace root.
fn find_root() -> Option<PathBuf> {
    let mut d = std::env::current_dir().ok()?;
    loop {
        if d.join("DESIGN.md").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        if !d.pop() {
            return None;
        }
    }
}
