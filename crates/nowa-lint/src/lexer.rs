//! A minimal hand-rolled Rust lexer.
//!
//! Produces a flat token stream with line numbers, keeping comments as
//! first-class tokens (the rules read `// SAFETY:`, `// ordering:` and
//! `// lint:` markers out of them). It understands exactly as much Rust as
//! the rules need: strings (plain, raw, byte), char literals vs lifetimes,
//! nested block comments, numbers, identifiers and punctuation. It does
//! *not* build a syntax tree — [`crate::parse`] layers a small item model
//! on top.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Source text of the token (comments keep their full text, including
    /// the `//` / `/*` introducers).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Token classification, just fine-grained enough for the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the parser distinguishes keywords by text).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String / char / byte / numeric literal.
    Literal,
    /// `'lifetime` (including the quote).
    Lifetime,
    /// `// …` (also `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` (nesting folded into one token).
    BlockComment,
}

impl Token {
    /// True for comment trivia of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True for a `///` or `//!` doc comment.
    pub fn is_doc_comment(&self) -> bool {
        self.kind == TokenKind::LineComment
            && (self.text.starts_with("///") || self.text.starts_with("//!"))
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs are
/// consumed to end-of-file (the lint runs on a tree that `rustc` already
/// accepts, so this only matters for fixtures).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::LineComment,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokenKind::BlockComment,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: start_line,
                });
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from_utf8_lossy(&b[start..i.min(b.len())]).into_owned(),
                    line: start_line,
                });
            }
            b'r' | b'b' if raw_string_start(b, i) => {
                let start = i;
                let start_line = line;
                // Skip the `r` / `b` / `br` prefix and count `#`s.
                let mut saw_r = false;
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    saw_r |= b[i] == b'r';
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < b.len() {
                    // Plain byte strings (`b"…"`) honor escapes; raw forms
                    // (`r"…"`, `br#"…"#`) do not.
                    if !saw_r && b[i] == b'\\' {
                        i += 2;
                        continue;
                    }
                    if b[i..].starts_with(&closer) {
                        i += closer.len();
                        break;
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from_utf8_lossy(&b[start..i.min(b.len())]).into_owned(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Char literal vs lifetime. `'x'` / `'\n'` are chars; a
                // quote followed by an identifier with no closing quote is
                // a lifetime.
                if is_char_literal(b, i) {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Token {
                        kind: TokenKind::Literal,
                        text: String::from_utf8_lossy(&b[start..i.min(b.len())]).into_owned(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    toks.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // `b"…"` / `b'…'` / `r"…"` prefixes were handled above, so a
                // bare identifier here really is one.
                toks.push(Token {
                    kind: TokenKind::Ident,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a `1..2` range from being eaten as one number.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Literal,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            _ => {
                toks.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Is position `i` (at `r` or `b`) the start of a raw/byte string literal?
fn raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        saw_r |= b[j] == b'r';
        j += 1;
    }
    if j >= b.len() {
        return false;
    }
    if b[j] == b'"' {
        // b"…" byte strings are handled here too (saw_r may be false).
        return true;
    }
    saw_r && b[j] == b'#' // r#"…"# or br#"…"#
}

/// Is the `'` at `i` a char literal (as opposed to a lifetime)?
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true; // '\n', '\'', '\u{…}'
    }
    // 'x' — one char then a closing quote.
    if i + 2 < b.len() && b[i + 2] == b'\'' {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_paths() {
        let t = kinds("use core::sync::atomic::Ordering;");
        assert_eq!(t[0], (TokenKind::Ident, "use".into()));
        assert_eq!(t[1], (TokenKind::Ident, "core".into()));
        assert_eq!(t[2], (TokenKind::Punct, ":".into()));
        assert!(t.iter().any(|(_, s)| s == "Ordering"));
    }

    #[test]
    fn comments_survive_with_lines() {
        let toks = lex("let a = 1; // SAFETY: fine\n/* block\ncomment */ let b = 2;");
        let lc = toks
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert!(lc.text.contains("SAFETY"));
        assert_eq!(lc.line, 1);
        let bc = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .unwrap();
        assert_eq!(bc.line, 2);
        let b_tok = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "Ordering::SeqCst // not a comment";"#);
        assert!(toks.iter().all(|t| t.kind != TokenKind::LineComment));
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "Ordering"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let toks = lex(r##"let s = r#"un"balanced"#; let c = '\n'; fn f<'a>(x: &'a u8) {}"##);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text.starts_with("r#")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks.iter().any(|t| t.text == "fn"));
    }
}
