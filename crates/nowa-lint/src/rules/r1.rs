//! R1 — ordering-audit-drift.
//!
//! Forward: every non-test `Ordering::` site in the audited crates must be
//! covered by a DESIGN.md §7b row anchored to its file and enclosing fn
//! (or carry an `// ordering:` comment at the site). Backward: every audit
//! row's fn anchor must still bind to at least one live non-test site —
//! a row describing code that no longer exists is drift in the other
//! direction. Structural problems in the audit document itself (rows the
//! parser cannot anchor) are also reported here.

use crate::audit::anchor_matches;
use crate::diag::Diagnostic;
use crate::rules::{in_scope, AUDIT_SCOPE};
use crate::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = ws.audit.errors.clone();

    // Forward: code → audit.
    for f in ws
        .files
        .iter()
        .filter(|f| in_scope(&f.rel_path, AUDIT_SCOPE))
    {
        for s in f.ordering_sites.iter().filter(|s| !s.in_test) {
            if f.allowed_inline("R1", s.line) || f.line_or_block_above_contains(s.line, "ordering:")
            {
                continue;
            }
            let fn_lower = s.enclosing_fn.as_deref().map(|n| n.to_lowercase());
            let covered = ws.audit.entries.iter().any(|e| {
                e.covers_path(&f.rel_path)
                    && (e.blanket || fn_lower.as_deref().is_some_and(|fl| e.anchors_fn(fl)))
            });
            if !covered {
                let place = match s.enclosing_fn.as_deref() {
                    Some(name) => format!("in fn `{name}`"),
                    None => "at module scope".to_string(),
                };
                out.push(
                    Diagnostic::new(
                        &f.rel_path,
                        s.line,
                        "R1",
                        format!(
                            "`Ordering::{}` {place} is not covered by the DESIGN.md \
                             §7b audit — add an anchored row (or an `// ordering:` \
                             comment at the site)",
                            s.variant
                        ),
                    )
                    .in_fn(s.enclosing_fn.as_deref()),
                );
            }
        }
    }

    // Backward: audit → code.
    for e in &ws.audit.entries {
        let files: Vec<_> = ws
            .files
            .iter()
            .filter(|f| e.covers_path(&f.rel_path))
            .collect();
        if files.is_empty() {
            out.push(Diagnostic::new(
                &ws.audit.rel_path,
                e.line,
                "R1",
                format!(
                    "stale audit row `{}`: no source file matches `{}` in crate `{}`",
                    e.site_text,
                    e.files.join("`/`"),
                    e.crate_name
                ),
            ));
            continue;
        }
        if e.blanket {
            let any = files
                .iter()
                .any(|f| f.ordering_sites.iter().any(|s| !s.in_test));
            if !any {
                out.push(Diagnostic::new(
                    &ws.audit.rel_path,
                    e.line,
                    "R1",
                    format!(
                        "stale audit row `{}`: `{}` has no non-test `Ordering::` \
                         site left to blanket",
                        e.site_text,
                        e.files.join("`/`")
                    ),
                ));
            }
            continue;
        }
        for a in &e.anchors {
            let bound = files.iter().any(|f| {
                f.ordering_sites.iter().any(|s| {
                    !s.in_test
                        && s.enclosing_fn
                            .as_deref()
                            .is_some_and(|n| anchor_matches(a, &n.to_lowercase()))
                })
            });
            if !bound {
                out.push(Diagnostic::new(
                    &ws.audit.rel_path,
                    e.line,
                    "R1",
                    format!(
                        "stale audit row `{}`: anchor `{}` matches no non-test \
                         `Ordering::` site in `{}`",
                        e.site_text,
                        a,
                        e.files.join("`/`")
                    ),
                ));
            }
        }
    }

    out
}
