//! R2 — shim-discipline.
//!
//! Modules that were ported to the cfg-twinned loom shims must never name
//! `std::sync::atomic` / `core::sync::atomic` / `std::sync::Mutex` (and
//! friends) directly — a direct reference compiles fine but is invisible
//! to the model checker, which silently weakens every model covering the
//! module. This applies to test modules inside the file too: the shim
//! types are `pub(crate)` and work there just as well, and keeping the
//! whole file clean means a future refactor cannot move a bypassing
//! import into modeled code unnoticed.

use crate::diag::Diagnostic;
use crate::rules::SHIM_MODULES;
use crate::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !SHIM_MODULES.iter().any(|m| f.rel_path.ends_with(m)) {
            continue;
        }
        for a in &f.atomic_paths {
            if f.allowed_inline("R2", a.line) {
                continue;
            }
            out.push(Diagnostic::new(
                &f.rel_path,
                a.line,
                "R2",
                format!(
                    "direct `{}` reference in a loom-shimmed module — import it \
                     from `crate::sync` so the model checker sees the access",
                    a.path
                ),
            ));
        }
    }
    out
}
