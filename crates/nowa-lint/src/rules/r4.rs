//! R4 — safety-comments.
//!
//! Every `unsafe` site in the scoped crates carries its proof obligation
//! in writing:
//!
//! * `unsafe fn` — a `/// # Safety` doc section (or `// SAFETY:` comment)
//!   directly above, unless an `#[allow(clippy::missing_safety_doc)]` is
//!   in scope (the no-op twin arms use that deliberately: their contract
//!   is "same as the real arm");
//! * `unsafe {}` block — an adjacent `// SAFETY:` comment, except inside
//!   an `unsafe fn` body, where the fn-level contract governs (and is
//!   itself checked);
//! * `unsafe impl` / `unsafe trait` — an adjacent `// SAFETY:` comment.
//!
//! Test code is *not* exempt: tests exercise the raw context-switch API
//! directly and are exactly where a stale safety assumption bites first.

use crate::diag::Diagnostic;
use crate::parse::UnsafeKind;
use crate::rules::{in_scope, SAFETY_SCOPE};
use crate::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in ws
        .files
        .iter()
        .filter(|f| in_scope(&f.rel_path, SAFETY_SCOPE))
    {
        let file_allows = f
            .inner_attrs
            .iter()
            .any(|a| a.contains("missing_safety_doc"));

        for fun in f.fns.iter().filter(|fun| fun.is_unsafe) {
            if fun.has_safety_comment
                || file_allows
                || fun
                    .attrs
                    .iter()
                    .chain(fun.scope_attrs.iter())
                    .any(|a| a.contains("missing_safety_doc"))
                || f.allowed_inline("R4", fun.line)
            {
                continue;
            }
            out.push(
                Diagnostic::new(
                    &f.rel_path,
                    fun.line,
                    "R4",
                    format!(
                        "unsafe fn `{}` has no `/// # Safety` section or \
                         `// SAFETY:` comment stating its contract",
                        fun.name
                    ),
                )
                .in_fn(Some(&fun.name)),
            );
        }

        for u in &f.unsafe_sites {
            let needs_comment = match u.kind {
                UnsafeKind::Block => !u.inside_unsafe_fn,
                UnsafeKind::Impl | UnsafeKind::Trait => true,
                UnsafeKind::Fn => false, // handled via FnItem above
            };
            if !needs_comment
                || f.line_or_block_above_contains(u.line, "SAFETY:")
                || f.allowed_inline("R4", u.line)
            {
                continue;
            }
            let what = match u.kind {
                UnsafeKind::Block => match u.enclosing_fn.as_deref() {
                    Some(name) => format!("unsafe block in `{name}`"),
                    None => "unsafe block".to_string(),
                },
                UnsafeKind::Impl => format!(
                    "unsafe impl{}",
                    u.name
                        .as_deref()
                        .map(|n| format!(" `{n}`"))
                        .unwrap_or_default()
                ),
                UnsafeKind::Trait => format!(
                    "unsafe trait{}",
                    u.name
                        .as_deref()
                        .map(|n| format!(" `{n}`"))
                        .unwrap_or_default()
                ),
                UnsafeKind::Fn => unreachable!(),
            };
            out.push(
                Diagnostic::new(
                    &f.rel_path,
                    u.line,
                    "R4",
                    format!("{what} has no adjacent `// SAFETY:` comment"),
                )
                .in_fn(u.enclosing_fn.as_deref()),
            );
        }
    }
    out
}
