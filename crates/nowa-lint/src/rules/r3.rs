//! R3 — cfg-twin parity.
//!
//! A cfg-twinned file ships two arms of the same module — one compiled
//! normally, one under a cfg (`loom`, `feature = "trace"`, …) — and the
//! whole zero-cost pattern rests on the arms being drop-in replacements.
//! This rule checks, per cfg key that appears with both polarities:
//!
//! * every public name one arm exports, the other exports too;
//! * when both arms define a fn of the same name, the normalized
//!   signatures match (parameter names may differ, types may not).
//!
//! Two shapes are understood uniformly: mod-twins (`#[cfg(X)] mod imp`
//! next to `#[cfg(not(X))] mod imp`, as in `obs.rs`/`chaos.rs` — items
//! inherit their mod's cfg) and direct item twins (cfg on the items
//! themselves, as in the `sync.rs` shims). One asymmetry is sanctioned:
//! a cfg-gated `pub use imp::{…}` that elevates *extra* API out of a twin
//! mod (the `chaos` feature's inspection surface) — rooted in the twin,
//! the extra names demonstrably exist only by the twin author's explicit
//! choice, not by accident.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::parse::{FileModel, Item, ItemKind};
use crate::rules::TWIN_FILES;
use crate::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        if TWIN_FILES.iter().any(|m| f.rel_path.ends_with(m)) {
            check_file(f, &mut out);
        }
    }
    out
}

/// `[cfg(loom)]` → `("loom", true)`; `[cfg(not(loom))]` → `("loom", false)`.
fn cfg_key(attr: &str) -> Option<(String, bool)> {
    let inner = attr.strip_prefix("[cfg(")?.strip_suffix(")]")?;
    match inner.strip_prefix("not(").and_then(|s| s.strip_suffix(')')) {
        Some(k) => Some((k.to_string(), false)),
        None => Some((inner.to_string(), true)),
    }
}

/// The item's polarity w.r.t. `key`: `Some(true)` in the positive arm,
/// `Some(false)` in the negative, `None` if shared.
fn polarity(item: &Item, key: &str) -> Option<bool> {
    item.cfgs
        .iter()
        .find_map(|c| cfg_key(c).filter(|(k, _)| k == key).map(|(_, p)| p))
}

fn check_file(f: &FileModel, out: &mut Vec<Diagnostic>) {
    // Keys that occur with both polarities form twin pairs.
    let mut pos_keys: BTreeSet<String> = BTreeSet::new();
    let mut neg_keys: BTreeSet<String> = BTreeSet::new();
    for item in &f.items {
        for c in &item.cfgs {
            if let Some((k, pol)) = cfg_key(c) {
                if pol {
                    pos_keys.insert(k)
                } else {
                    neg_keys.insert(k)
                };
            }
        }
    }

    for key in pos_keys.intersection(&neg_keys) {
        // Mod names twinned under this key.
        let twin_mods: BTreeSet<&str> = f
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Mod && polarity(i, key) == Some(true))
            .flat_map(|i| i.names.iter())
            .filter(|n| {
                f.items.iter().any(|j| {
                    j.kind == ItemKind::Mod
                        && polarity(j, key) == Some(false)
                        && j.names.contains(n)
                })
            })
            .map(|n| n.as_str())
            .collect();

        // Sanctioned elevations: cfg-gated re-exports rooted in a twin mod.
        let roots_in_twin = |item: &Item| -> bool {
            item.kind == ItemKind::Use
                && item.use_path.as_deref().is_some_and(|p| {
                    let p = p.strip_prefix("self::").unwrap_or(p);
                    twin_mods.contains(p.split(':').next().unwrap_or(""))
                })
        };
        let elevated: BTreeSet<(bool, &str)> = f
            .items
            .iter()
            .filter(|i| roots_in_twin(i))
            .filter_map(|i| polarity(i, key).map(|pol| (i, pol)))
            .flat_map(|(i, pol)| i.names.iter().map(move |n| (pol, n.as_str())))
            .collect();

        // Arm surfaces, grouped by module path.
        type Surface<'a> = BTreeMap<String, &'a Item>;
        let mut groups: BTreeMap<&[String], (Surface, Surface)> = BTreeMap::new();
        for item in &f.items {
            if !item.vis.starts_with("pub") {
                continue;
            }
            let Some(pol) = polarity(item, key) else {
                continue;
            };
            if roots_in_twin(item) {
                continue;
            }
            let entry = groups.entry(&item.mod_path).or_default();
            let side = if pol { &mut entry.0 } else { &mut entry.1 };
            for n in item.names.iter().filter(|n| n.as_str() != "*") {
                side.insert(n.clone(), item);
            }
        }

        for (pos, neg) in groups.values() {
            let one_sided = [(pos, neg, true), (neg, pos, false)];
            for (have, lack, pol) in one_sided {
                for (n, item) in have.iter() {
                    if lack.contains_key(n)
                        || elevated.contains(&(pol, n.as_str()))
                        || f.allowed_inline("R3", item.line)
                    {
                        continue;
                    }
                    let (this, other) = if pol {
                        (format!("cfg({key})"), format!("cfg(not({key}))"))
                    } else {
                        (format!("cfg(not({key}))"), format!("cfg({key})"))
                    };
                    out.push(Diagnostic::new(
                        &f.rel_path,
                        item.line,
                        "R3",
                        format!(
                            "`{n}` is exported only under {this} — the {other} twin \
                             arm must export it too (or elevate it explicitly from \
                             the twin mod)"
                        ),
                    ));
                }
            }
            for (n, pi) in pos {
                let Some(ni) = neg.get(n) else { continue };
                let (Some(pf), Some(nf)) = (pi.fn_index, ni.fn_index) else {
                    continue;
                };
                let (ps, ns) = (&f.fns[pf].sig, &f.fns[nf].sig);
                if ps != ns && !f.allowed_inline("R3", pi.line) {
                    out.push(Diagnostic::new(
                        &f.rel_path,
                        pi.line,
                        "R3",
                        format!(
                            "fn `{n}` differs between cfg({key}) arms: \
                             `{ps}` vs `{ns}`"
                        ),
                    ));
                }
            }
        }
    }
}
