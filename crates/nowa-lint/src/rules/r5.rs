//! R5 — hot-path hygiene.
//!
//! Functions annotated `// lint: hot-path` sit on the spawn/steal/join
//! fast path, where a hidden allocation or lock defeats the wait-free
//! design the paper measures. The rule scans their bodies for a fixed
//! needle list of blocking/allocating calls. This is a *textual* check —
//! a hand-rolled lexer cannot type-resolve a `.push(` receiver — so the
//! needles are chosen to be rare outside their std meanings, and every
//! hit can be suppressed with a reasoned allowlist entry (the THE deque's
//! arbitration lock is the canonical example).
//!
//! The stronger marker `// lint: hot-path private` additionally claims the
//! §6g zero-shared-atomic fast path: the split deque's private ring ops
//! are owner-only `Cell` state, and any atomic load/store/RMW or fence in
//! such a fn falsifies the layer's whole performance argument. Those fns
//! are scanned for a second needle list of shared-synchronization
//! constructs on top of the standard one.

use crate::diag::Diagnostic;
use crate::Workspace;

/// Blocking or allocating constructs banned from hot paths.
const NEEDLES: &[&str] = &[
    "Box::new",
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    ".push(",
    "String::new",
    "String::from",
    ".to_string(",
    ".to_owned(",
    "format!",
    "println!",
    "eprintln!",
    "print!(",
    "eprint!(",
    "HashMap::new",
    "BTreeMap::new",
    "thread::sleep",
    ".lock(",
    ".wait(",
    ".join(",
];

/// Shared-synchronization constructs banned from `hot-path private` fns:
/// the marker claims the fn runs on owner-only state with no coherence
/// traffic at all, so even a Relaxed probe needs an explicit exception.
const PRIVATE_NEEDLES: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_",
    ".compare_exchange",
    "fence(",
];

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        for fun in f.fns.iter().filter(|fun| fun.hot_path) {
            let Some((start, end)) = fun.body else {
                continue;
            };
            for line in start..=end {
                let Some(raw) = f.lines.get((line - 1) as usize) else {
                    break;
                };
                // Strip a trailing line comment (naive, but hot-path bodies
                // do not put `//` inside string literals).
                let code = raw.split("//").next().unwrap_or("");
                for needle in NEEDLES {
                    if code.contains(needle) && !f.allowed_inline("R5", line) {
                        out.push(
                            Diagnostic::new(
                                &f.rel_path,
                                line,
                                "R5",
                                format!(
                                    "hot-path fn `{}` calls `{}` — blocking or \
                                     allocating on the fast path (allowlist it \
                                     with a reason if intentional)",
                                    fun.name,
                                    needle.trim_start_matches('.').trim_end_matches('('),
                                ),
                            )
                            .in_fn(Some(&fun.name)),
                        );
                    }
                }
                if !fun.hot_path_private {
                    continue;
                }
                for needle in PRIVATE_NEEDLES {
                    if code.contains(needle) && !f.allowed_inline("R5", line) {
                        out.push(
                            Diagnostic::new(
                                &f.rel_path,
                                line,
                                "R5",
                                format!(
                                    "hot-path-private fn `{}` uses `{}` — the \
                                     `private` marker claims a zero-shared-atomic \
                                     path (drop the marker or allowlist it with \
                                     a reason)",
                                    fun.name,
                                    needle.trim_start_matches('.').trim_end_matches('('),
                                ),
                            )
                            .in_fn(Some(&fun.name)),
                        );
                    }
                }
            }
        }
    }
    out
}
