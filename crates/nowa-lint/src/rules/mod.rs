//! The rule set. Each rule consumes the parsed [`Workspace`] and returns
//! diagnostics; scoping (which crates/files a rule applies to) lives here
//! so the whole policy is visible in one place. DESIGN.md §7c is the
//! human-readable catalogue of these rules.

use crate::diag::Diagnostic;
use crate::Workspace;

pub mod r1;
pub mod r2;
pub mod r3;
pub mod r4;
pub mod r5;

/// R2: modules ported to the loom shims — every atomic/lock in them must go
/// through `crate::sync`, or the model checker silently loses sight of it.
pub const SHIM_MODULES: &[&str] = &[
    "nowa-deque/src/cl.rs",
    "nowa-deque/src/the.rs",
    "nowa-deque/src/abp.rs",
    "nowa-deque/src/split.rs",
    "nowa-runtime/src/idle.rs",
    "nowa-runtime/src/injector.rs",
    "nowa-runtime/src/snzi.rs",
    "nowa-runtime/src/record.rs",
    "nowa-runtime/src/flavor.rs",
    "nowa-runtime/src/worker.rs",
    "nowa-runtime/src/task.rs",
    "nowa-runtime/src/reactor.rs",
];

/// R3: cfg-twinned files whose arms must export the same public surface.
pub const TWIN_FILES: &[&str] = &[
    "nowa-runtime/src/obs.rs",
    "nowa-runtime/src/chaos.rs",
    "nowa-runtime/src/sync.rs",
    "nowa-deque/src/sync.rs",
];

/// R1: crates whose `Ordering::` sites the DESIGN.md §7b audit must cover.
pub const AUDIT_SCOPE: &[&str] = &["nowa-deque/src/", "nowa-runtime/src/"];

/// R4: crates whose `unsafe` requires documented contracts.
pub const SAFETY_SCOPE: &[&str] = &["nowa-context/src/", "nowa-runtime/src/"];

/// Does `rel_path` fall under one of the scope fragments?
pub(crate) fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| rel_path.contains(s))
}

/// Runs every rule over the workspace (allowlist not yet applied).
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(r1::check(ws));
    out.extend(r2::check(ws));
    out.extend(r3::check(ws));
    out.extend(r4::check(ws));
    out.extend(r5::check(ws));
    out
}
