//! The explicit allowlist: `nowa-lint.allow` at the workspace root.
//!
//! One suppression per line, pipe-separated:
//!
//! ```text
//! <rule> | <file-suffix> | <fn or *> | <message-needle or *> | <reason>
//! ```
//!
//! The reason is mandatory — an allowlist entry is a documented decision,
//! not an escape hatch. Blank lines and `#` comments are ignored. A
//! diagnostic is suppressed when the rule matches, the diagnostic's file
//! path ends with `<file-suffix>`, the enclosing fn equals `<fn>` (or `*`),
//! and the message contains `<message-needle>` (or `*`).

use crate::diag::Diagnostic;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub file_suffix: String,
    pub fn_name: String,
    pub needle: String,
    pub reason: String,
    /// Line in the allowlist file (for unused-entry reporting).
    pub line: u32,
}

/// The parsed allowlist plus any parse errors (reported as diagnostics
/// against the allowlist file itself).
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub errors: Vec<Diagnostic>,
    /// Path the list was loaded from (workspace-relative), for messages.
    pub rel_path: String,
}

impl Allowlist {
    /// Parses allowlist text. `rel_path` labels parse errors.
    pub fn parse(rel_path: &str, text: &str) -> Allowlist {
        let mut list = Allowlist {
            rel_path: rel_path.to_string(),
            ..Allowlist::default()
        };
        for (i, raw) in text.lines().enumerate() {
            let line = (i + 1) as u32;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = l.split('|').map(|f| f.trim()).collect();
            if fields.len() != 5 {
                list.errors.push(Diagnostic::new(
                    rel_path,
                    line,
                    "ALLOW",
                    format!(
                        "malformed allowlist entry (want `rule | file | fn | needle | reason`, got {} fields)",
                        fields.len()
                    ),
                ));
                continue;
            }
            if fields[4].is_empty() {
                list.errors.push(Diagnostic::new(
                    rel_path,
                    line,
                    "ALLOW",
                    "allowlist entry has an empty reason — document why the suppression is sound",
                ));
                continue;
            }
            list.entries.push(AllowEntry {
                rule: fields[0].to_string(),
                file_suffix: fields[1].to_string(),
                fn_name: fields[2].to_string(),
                needle: fields[3].to_string(),
                reason: fields[4].to_string(),
                line,
            });
        }
        list
    }

    /// Does any entry suppress `d`? Returns the entry index for
    /// used-entry accounting.
    pub fn suppresses(&self, d: &Diagnostic) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == d.rule
                && d.file.ends_with(&e.file_suffix)
                && (e.fn_name == "*" || d.context_fn.as_deref() == Some(e.fn_name.as_str()))
                && (e.needle == "*" || d.message.contains(&e.needle))
        })
    }

    /// Filters `diags` through the list; returns surviving diagnostics and
    /// appends an `ALLOW` diagnostic per entry that suppressed nothing
    /// (stale suppressions are drift too).
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut used = vec![false; self.entries.len()];
        let mut out: Vec<Diagnostic> = Vec::new();
        for d in diags {
            match self.suppresses(&d) {
                Some(i) => used[i] = true,
                None => out.push(d),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !used[i] {
                out.push(Diagnostic::new(
                    &self.rel_path,
                    e.line,
                    "ALLOW",
                    format!(
                        "stale allowlist entry ({} {} {} {}): it suppresses nothing — remove it",
                        e.rule, e.file_suffix, e.fn_name, e.needle
                    ),
                ));
            }
        }
        out.extend(self.errors.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_match_and_stale() {
        let list = Allowlist::parse(
            "nowa-lint.allow",
            "# comment\n\nR5 | src/the.rs | push | .lock( | THE locks by design\nR5 | src/gone.rs | * | * | stale\n",
        );
        assert_eq!(list.entries.len(), 2);
        let hit = Diagnostic::new("crates/d/src/the.rs", 10, "R5", "calls .lock( in hot path")
            .in_fn(Some("push"));
        let miss = Diagnostic::new("crates/d/src/the.rs", 11, "R5", "calls .lock( in hot path")
            .in_fn(Some("steal"));
        let out = list.apply(vec![hit, miss.clone()]);
        // miss survives; the gone.rs entry is stale.
        assert!(out.iter().any(|d| d == &miss));
        assert!(out
            .iter()
            .any(|d| d.rule == "ALLOW" && d.message.contains("stale")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn malformed_and_empty_reason() {
        let list = Allowlist::parse("a", "R1 | f.rs | x\nR1 | f.rs | * | * |  ");
        assert_eq!(list.entries.len(), 0);
        assert_eq!(list.errors.len(), 2);
    }
}
