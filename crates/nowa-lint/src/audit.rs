//! Parser for the DESIGN.md §7b memory-ordering audit tables.
//!
//! The audit appendix is the contract R1 enforces. Its machine-readable
//! structure:
//!
//! * `### Audit table — `crate`` headings set the crate context.
//! * Bold module headers (`**`cl.rs` (…)**`) set the file context; a
//!   header may name several files (`**`flavor.rs` / `record.rs` (…)**`),
//!   in which case rows anchor into any of them.
//! * Each table row's Site cell *leads* with one or more backticked fn
//!   anchors separated by `/` or `,` — `` `pop` `` or
//!   `` `wake_one`/`wake_scan` `` — followed by free-text describing the
//!   site. `Type::method` anchors bind to the method name; a trailing
//!   `()` is stripped; a trailing `*` is a prefix glob; `(all sites)`
//!   blankets the whole file.
//!
//! Fenced code blocks inside §7b are skipped.

use crate::diag::Diagnostic;

/// One audit-table row, resolved to (crate, files, fn anchors).
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Crate the enclosing `### Audit table — …` names, e.g. `nowa-deque`.
    pub crate_name: String,
    /// File names from the enclosing bold header, e.g. `["cl.rs"]`.
    pub files: Vec<String>,
    /// Lowercased fn anchors (last `::` segment, `()` stripped; may end
    /// in `*` for a prefix glob).
    pub anchors: Vec<String>,
    /// Row said `(all sites)`: every site in the file(s) is covered.
    pub blanket: bool,
    /// Line of the row in the audit document.
    pub line: u32,
    /// Raw Site cell text, for messages.
    pub site_text: String,
}

/// The parsed audit plus structural errors (rows the parser cannot
/// anchor are themselves drift).
#[derive(Debug, Default)]
pub struct Audit {
    pub entries: Vec<AuditEntry>,
    pub errors: Vec<Diagnostic>,
    pub rel_path: String,
}

impl AuditEntry {
    /// Does this entry's (crate, file) pair cover the source file at
    /// workspace-relative `rel_path`?
    pub fn covers_path(&self, rel_path: &str) -> bool {
        let p = rel_path.replace('\\', "/");
        p.contains(&format!("/{}/", self.crate_name))
            && self
                .files
                .iter()
                .any(|f| p.ends_with(&format!("/{f}")) || p == *f)
    }

    /// Does any anchor of this row match the (lowercased) fn name?
    pub fn anchors_fn(&self, fn_name_lower: &str) -> bool {
        self.anchors
            .iter()
            .any(|a| anchor_matches(a, fn_name_lower))
    }
}

/// Glob-aware anchor match (`wake_*` matches `wake_one`).
pub fn anchor_matches(anchor: &str, fn_name_lower: &str) -> bool {
    match anchor.strip_suffix('*') {
        Some(prefix) => fn_name_lower.starts_with(prefix),
        None => anchor == fn_name_lower,
    }
}

/// Parses the §7b appendix out of `text` (the whole DESIGN.md).
pub fn parse(rel_path: &str, text: &str) -> Audit {
    let mut audit = Audit {
        rel_path: rel_path.to_string(),
        ..Audit::default()
    };
    let mut in_7b = false;
    let mut in_fence = false;
    let mut crate_name: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let l = raw.trim();

        if l.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if l.starts_with("## ") && !l.starts_with("## 7b") {
            if in_7b {
                break; // end of the appendix
            }
            continue;
        }
        if l.starts_with("## 7b") {
            in_7b = true;
            continue;
        }
        if !in_7b {
            continue;
        }

        if let Some(rest) = l.strip_prefix("### Audit table") {
            crate_name = backticked(rest).into_iter().next();
            files.clear();
            if crate_name.is_none() {
                audit.errors.push(Diagnostic::new(
                    rel_path,
                    line_no,
                    "R1",
                    "audit-table heading names no crate (expected `### Audit table — \\`crate\\``)",
                ));
            }
            continue;
        }

        if l.starts_with("**") {
            // Module header: collect every backticked `*.rs` name. A bold
            // line without one ends the file context (prose emphasis).
            let rs: Vec<String> = backticked(l)
                .into_iter()
                .filter(|n| n.ends_with(".rs"))
                .collect();
            files = rs;
            continue;
        }

        if l.starts_with('|') {
            let cells: Vec<&str> = l.trim_matches('|').split('|').map(|c| c.trim()).collect();
            let site = match cells.first() {
                Some(s) if !s.is_empty() => *s,
                _ => continue,
            };
            if site == "Site" || site.chars().all(|c| "-: ".contains(c)) {
                continue; // header or separator row
            }
            let blanket = site.contains("(all sites)");
            let anchors = if blanket {
                Vec::new()
            } else {
                leading_anchors(site)
            };
            let (Some(krate), false) = (crate_name.clone(), files.is_empty()) else {
                audit.errors.push(Diagnostic::new(
                    rel_path,
                    line_no,
                    "R1",
                    format!(
                        "audit row `{site}` is not anchored to a crate/file \
                         (no `**\\`file.rs\\`**` header above it)"
                    ),
                ));
                continue;
            };
            if anchors.is_empty() && !blanket {
                audit.errors.push(Diagnostic::new(
                    rel_path,
                    line_no,
                    "R1",
                    format!(
                        "audit row `{site}` has no leading backticked fn anchor \
                         (write `\\`fn_name\\` …` or `(all sites)`)"
                    ),
                ));
                continue;
            }
            audit.entries.push(AuditEntry {
                crate_name: krate,
                files: files.clone(),
                anchors,
                blanket,
                line: line_no,
                site_text: site.to_string(),
            });
        }
    }

    if !in_7b {
        audit.errors.push(Diagnostic::new(
            rel_path,
            1,
            "R1",
            "no `## 7b` memory-ordering audit appendix found",
        ));
    }
    audit
}

/// All backtick-delimited spans in `s`, in order.
fn backticked(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    out
}

/// The leading fn anchors of a Site cell: backticked names at the start,
/// chained by `/` or `,`. Stops at the first plain word — in
/// `` `pop` `bottom` load `` only `pop` anchors (space-adjacent backticks
/// are site detail, not extra fns).
fn leading_anchors(cell: &str) -> Vec<String> {
    let mut anchors = Vec::new();
    let mut rest = cell.trim_start();
    while let Some(tail) = rest.strip_prefix('`') {
        let Some(end) = tail.find('`') else { break };
        anchors.push(normalize_anchor(&tail[..end]));
        rest = tail[end + 1..].trim_start();
        match rest.strip_prefix('/').or_else(|| rest.strip_prefix(',')) {
            Some(next) => rest = next.trim_start(),
            None => break,
        }
    }
    anchors
}

/// `Stealer::len` → `len`; `sleepers()` → `sleepers`; lowercased.
fn normalize_anchor(raw: &str) -> String {
    let s = raw.trim().trim_end_matches("()");
    let s = s.rsplit("::").next().unwrap_or(s);
    s.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# Design
## 7b. Appendix
### Audit table — `nowa-deque`
```rust
| fake | row | in | fence |
```
**`cl.rs` (Chase–Lev)**

| Site | Ordering | Invariant | Model |
|---|---|---|---|
| `push` `bottom` load | Relaxed | owner | — |
| `len`/`Stealer::len` loads | Relaxed | racy | — |
| `Drop::drop` buffer load | Relaxed | exclusive | — |

**`stats.rs` / `chaos.rs` (diagnostics)**

| Site | Ordering | Invariant |
|---|---|---|
| (all sites) monotone counters | Relaxed | skew-tolerant |
| `wake_*` mask CAS | AcqRel | claim |

## 8. Next section
| `after` the end | x | y |
";

    #[test]
    fn parses_crates_files_anchors() {
        let a = parse("DESIGN.md", DOC);
        assert!(a.errors.is_empty(), "{:?}", a.errors);
        assert_eq!(a.entries.len(), 5);
        let push = &a.entries[0];
        assert_eq!(push.crate_name, "nowa-deque");
        assert_eq!(push.files, vec!["cl.rs"]);
        assert_eq!(push.anchors, vec!["push"]); // `bottom` is detail, not an anchor
        let len = &a.entries[1];
        assert_eq!(len.anchors, vec!["len", "len"]);
        let drop_row = &a.entries[2];
        assert_eq!(drop_row.anchors, vec!["drop"]);
        let blanket = &a.entries[3];
        assert!(blanket.blanket);
        assert_eq!(blanket.files, vec!["stats.rs", "chaos.rs"]);
        let glob = &a.entries[4];
        assert!(glob.anchors_fn("wake_one"));
        assert!(!glob.anchors_fn("park"));
    }

    #[test]
    fn covers_path_is_crate_scoped() {
        let a = parse("DESIGN.md", DOC);
        let push = &a.entries[0];
        assert!(push.covers_path("crates/nowa-deque/src/cl.rs"));
        assert!(!push.covers_path("crates/nowa-runtime/src/cl.rs"));
        assert!(!push.covers_path("crates/nowa-deque/src/the.rs"));
    }

    #[test]
    fn unanchored_rows_are_errors() {
        let doc = "## 7b. X\n### Audit table — `c`\n| `f` load | Relaxed | x |\n";
        let a = parse("D.md", doc);
        assert_eq!(a.entries.len(), 0);
        assert!(a.errors.iter().any(|e| e.message.contains("not anchored")));
    }

    #[test]
    fn missing_appendix_is_an_error() {
        let a = parse("D.md", "# nothing here\n");
        assert!(a.errors.iter().any(|e| e.message.contains("no `## 7b`")));
    }
}
