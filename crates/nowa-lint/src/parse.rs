//! A lightweight item/scope model over the token stream.
//!
//! One linear scan with a scope stack recovers everything the rules need:
//! which function encloses each line, which code is `#[cfg(test)]`, where
//! the `unsafe` sites are, where `Ordering::X` is mentioned, which items a
//! module exports under which `cfg`, and which lines carry lint markers.
//! It is deliberately *not* a full parser — the input already compiles
//! under `rustc`, so the model only has to be right about the shapes that
//! actually occur (and the fixture tests pin those).

use crate::lexer::{lex, Token, TokenKind};

/// Atomic `Ordering` variants — used to tell `sync::atomic::Ordering::X`
/// apart from `cmp::Ordering::Less` and friends.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// A `Ordering::<variant>` mention in code.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    pub line: u32,
    pub variant: String,
    /// Innermost enclosing function, if any.
    pub enclosing_fn: Option<String>,
    pub in_test: bool,
}

/// A direct `std::sync::atomic` / `core::sync::atomic` /
/// `std::sync::{Mutex,RwLock,Condvar}` reference (import or inline path).
#[derive(Debug, Clone)]
pub struct AtomicPathSite {
    pub line: u32,
    /// The offending path prefix, e.g. `std::sync::atomic`.
    pub path: String,
    pub in_test: bool,
}

/// Kind of an `unsafe` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

/// An `unsafe` block, fn, impl or trait.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    pub kind: UnsafeKind,
    /// Name, for fns/impls/traits.
    pub name: Option<String>,
    /// For blocks: the innermost enclosing fn, if any.
    pub enclosing_fn: Option<String>,
    /// For blocks: true when lexically inside an `unsafe fn`'s body.
    pub inside_unsafe_fn: bool,
    pub in_test: bool,
}

/// A parsed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inclusive body line span; `None` for bodyless signatures.
    pub body: Option<(u32, u32)>,
    /// Normalized signature: qualifiers + parameter *types* + return/where
    /// tokens, whitespace-collapsed. Parameter names are dropped so twin
    /// arms may name (or `_`) their parameters differently.
    pub sig: String,
    pub is_unsafe: bool,
    pub in_test: bool,
    /// `// lint: hot-path` marker in the comment block above the fn.
    pub hot_path: bool,
    /// `// lint: hot-path private` marker: the fn additionally claims to
    /// touch no shared atomic at all (§6g owner-private fast path).
    pub hot_path_private: bool,
    /// `/// # Safety` doc section or adjacent `// SAFETY:` comment.
    pub has_safety_comment: bool,
    /// Attributes attached to the fn (full bracket text, spaces stripped).
    pub attrs: Vec<String>,
    /// Attributes inherited from enclosing `mod` scopes (e.g. a module-wide
    /// `#[allow(clippy::missing_safety_doc)]`).
    pub scope_attrs: Vec<String>,
    /// Names of enclosing `mod` scopes, outermost first.
    pub mod_path: Vec<String>,
}

/// Kind of a module-level item (for cfg-twin comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Trait,
    TypeAlias,
    Const,
    Static,
    Use,
    Mod,
}

/// A module-level item (top level, or one level inside a `mod`).
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name; for `use` items, the list of leaf names bound.
    pub names: Vec<String>,
    pub line: u32,
    pub attrs: Vec<String>,
    /// `pub`, `pub(crate)`, `pub(super)`, or "" for private.
    pub vis: String,
    /// Enclosing `mod` names, outermost first (empty at file top level).
    pub mod_path: Vec<String>,
    /// For fns: index into [`FileModel::fns`].
    pub fn_index: Option<usize>,
    /// Effective `[cfg(…)]` attributes: the item's own plus those inherited
    /// from enclosing `mod`s (a mod-twin's items inherit the twin's cfg).
    pub cfgs: Vec<String>,
    /// For `use` items: the flattened path text, e.g. `imp::{a,b}`.
    pub use_path: Option<String>,
}

/// The per-file model all rules consume.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, as printed in diagnostics.
    pub rel_path: String,
    /// Raw source lines (0-indexed storage; line N is `lines[N-1]`).
    pub lines: Vec<String>,
    pub fns: Vec<FnItem>,
    pub items: Vec<Item>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub ordering_sites: Vec<OrderingSite>,
    pub atomic_paths: Vec<AtomicPathSite>,
    /// File-level inner attributes (`#![…]`, spaces stripped).
    pub inner_attrs: Vec<String>,
}

#[derive(Debug, Clone)]
enum Scope {
    Mod {
        name: String,
        is_test: bool,
        attrs: Vec<String>,
    },
    Fn {
        index: usize,
        is_unsafe: bool,
        is_test: bool,
    },
    Impl,
    Other,
}

impl FileModel {
    /// Parses `src`, labeling diagnostics with `rel_path`.
    pub fn parse(rel_path: &str, src: &str) -> FileModel {
        let tokens = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let mut m = FileModel {
            rel_path: rel_path.to_string(),
            lines,
            fns: Vec::new(),
            items: Vec::new(),
            unsafe_sites: Vec::new(),
            ordering_sites: Vec::new(),
            atomic_paths: Vec::new(),
            inner_attrs: Vec::new(),
        };
        m.scan(&tokens);
        m
    }

    /// Is any part of the scope stack test-only?
    fn stack_in_test(stack: &[Scope]) -> bool {
        stack.iter().any(|s| match s {
            Scope::Mod { is_test, .. } => *is_test,
            Scope::Fn { is_test, .. } => *is_test,
            Scope::Impl | Scope::Other => false,
        })
    }

    fn innermost_fn(stack: &[Scope], fns: &[FnItem]) -> Option<String> {
        stack.iter().rev().find_map(|s| match s {
            Scope::Fn { index, .. } => Some(fns[*index].name.clone()),
            _ => None,
        })
    }

    fn inside_unsafe_fn(stack: &[Scope]) -> bool {
        stack
            .iter()
            .rev()
            .find_map(|s| match s {
                Scope::Fn { is_unsafe, .. } => Some(*is_unsafe),
                _ => None,
            })
            .unwrap_or(false)
    }

    fn mod_path(stack: &[Scope]) -> Vec<String> {
        stack
            .iter()
            .filter_map(|s| match s {
                Scope::Mod { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    /// Attributes inherited from enclosing `mod` scopes, outermost first.
    fn inherited_attrs(stack: &[Scope]) -> Vec<String> {
        stack
            .iter()
            .flat_map(|s| match s {
                Scope::Mod { attrs, .. } => attrs.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    /// Effective cfg attributes for an item: inherited mod cfgs + its own.
    fn cfgs_of(own: &[String], stack: &[Scope]) -> Vec<String> {
        Self::inherited_attrs(stack)
            .into_iter()
            .chain(own.iter().cloned())
            .filter(|a| a.starts_with("[cfg("))
            .collect()
    }

    /// True when the scanner sits at module-item position: every enclosing
    /// scope is a `mod` (so impl methods, trait members and statements in
    /// fn bodies are not mistaken for module items).
    fn item_position(stack: &[Scope]) -> bool {
        stack.iter().all(|s| matches!(s, Scope::Mod { .. }))
    }

    fn scan(&mut self, tokens: &[Token]) {
        // Indices of non-comment tokens; comments are consulted by line.
        let nc: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let tok = |p: usize| -> Option<&Token> { nc.get(p).map(|&i| &tokens[i]) };
        let text = |p: usize| -> &str { tok(p).map(|t| t.text.as_str()).unwrap_or("") };

        let mut stack: Vec<Scope> = Vec::new();
        // Scope kind to assign to the next `{`.
        let mut pending: Option<Scope> = None;
        // Attributes accumulated since the last item/statement boundary.
        let mut pending_attrs: Vec<String> = Vec::new();

        let mut p = 0usize;
        while p < nc.len() {
            let t = tok(p).unwrap();
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "#") => {
                    // #[…] or #![…]: consume the balanced bracket group.
                    let mut q = p + 1;
                    let inner = text(q) == "!";
                    if inner {
                        q += 1;
                    }
                    if text(q) == "[" {
                        let mut depth = 0usize;
                        let start = q;
                        while q < nc.len() {
                            match text(q) {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            q += 1;
                        }
                        let attr: String = (start..=q.min(nc.len().saturating_sub(1)))
                            .map(text)
                            .collect::<Vec<_>>()
                            .concat();
                        if inner {
                            self.inner_attrs.push(attr);
                        } else {
                            pending_attrs.push(attr);
                        }
                        p = q + 1;
                        continue;
                    }
                    p += 1;
                }
                (TokenKind::Ident, "macro_rules") => {
                    // macro_rules! name { … } — skip the whole definition;
                    // its body is token soup, not items.
                    let mut q = p;
                    while q < nc.len() && text(q) != "{" {
                        q += 1;
                    }
                    let mut depth = 0usize;
                    while q < nc.len() {
                        match text(q) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        q += 1;
                    }
                    pending_attrs.clear();
                    p = q + 1;
                }
                (TokenKind::Ident, "mod") => {
                    let name = text(p + 1).to_string();
                    let is_test = pending_attrs.iter().any(|a| a.contains("cfg(test)"))
                        || Self::stack_in_test(&stack);
                    if Self::item_position(&stack) {
                        self.items.push(Item {
                            kind: ItemKind::Mod,
                            names: vec![name.clone()],
                            line: t.line,
                            attrs: pending_attrs.clone(),
                            vis: Self::recent_vis(tokens, &nc, p),
                            mod_path: Self::mod_path(&stack),
                            fn_index: None,
                            cfgs: Self::cfgs_of(&pending_attrs, &stack),
                            use_path: None,
                        });
                    }
                    if text(p + 2) == "{" {
                        pending = Some(Scope::Mod {
                            name,
                            is_test,
                            attrs: pending_attrs.clone(),
                        });
                        p += 2; // land on `{`, handled below
                    } else {
                        p += 3; // `mod name;`
                    }
                    pending_attrs.clear();
                }
                (TokenKind::Ident, "use") => {
                    // Consume to `;`, recording bound leaf names and any
                    // shim-bypassing path mention.
                    let start_line = t.line;
                    let mut q = p + 1;
                    let mut path_tokens: Vec<String> = Vec::new();
                    while q < nc.len() && text(q) != ";" {
                        path_tokens.push(text(q).to_string());
                        q += 1;
                    }
                    let joined = path_tokens.concat();
                    self.record_atomic_paths(&joined, start_line, Self::stack_in_test(&stack));
                    if Self::item_position(&stack) {
                        self.items.push(Item {
                            kind: ItemKind::Use,
                            names: use_leaf_names(&path_tokens),
                            line: start_line,
                            attrs: pending_attrs.clone(),
                            vis: Self::recent_vis(tokens, &nc, p),
                            mod_path: Self::mod_path(&stack),
                            fn_index: None,
                            cfgs: Self::cfgs_of(&pending_attrs, &stack),
                            use_path: Some(joined.clone()),
                        });
                    }
                    pending_attrs.clear();
                    p = q + 1;
                }
                (TokenKind::Ident, "fn")
                    if tok(p + 1).map(|t| t.kind) == Some(TokenKind::Ident) =>
                {
                    let (item, body_open) = self.parse_fn(tokens, &nc, p, &stack, &pending_attrs);
                    let is_unsafe = item.is_unsafe;
                    let is_test = item.in_test;
                    let fn_line = item.line;
                    self.fns.push(item);
                    let index = self.fns.len() - 1;
                    if Self::item_position(&stack) {
                        self.items.push(Item {
                            kind: ItemKind::Fn,
                            names: vec![self.fns[index].name.clone()],
                            line: fn_line,
                            attrs: pending_attrs.clone(),
                            vis: Self::recent_vis(tokens, &nc, p),
                            mod_path: Self::mod_path(&stack),
                            fn_index: Some(index),
                            cfgs: Self::cfgs_of(&pending_attrs, &stack),
                            use_path: None,
                        });
                    }
                    pending_attrs.clear();
                    match body_open {
                        Some(open_p) => {
                            pending = Some(Scope::Fn {
                                index,
                                is_unsafe,
                                is_test,
                            });
                            p = open_p; // land on `{`
                        }
                        None => {
                            // Signature only (trait method): already past `;`.
                            p = self.after_fn_header(&nc, tokens, p);
                        }
                    }
                }
                (
                    TokenKind::Ident,
                    kw @ ("struct" | "enum" | "trait" | "union" | "type" | "static" | "const"),
                ) if tok(p + 1).map(|t| t.kind) == Some(TokenKind::Ident)
                    && text(p + 1) != "fn" =>
                {
                    let name = text(p + 1).to_string();
                    let kind = match kw {
                        "struct" => ItemKind::Struct,
                        "enum" => ItemKind::Enum,
                        "trait" => ItemKind::Trait,
                        "type" => ItemKind::TypeAlias,
                        "static" => ItemKind::Static,
                        _ => ItemKind::Const,
                    };
                    if Self::item_position(&stack) {
                        self.items.push(Item {
                            kind,
                            names: vec![name],
                            line: t.line,
                            attrs: pending_attrs.clone(),
                            vis: Self::recent_vis(tokens, &nc, p),
                            mod_path: Self::mod_path(&stack),
                            fn_index: None,
                            cfgs: Self::cfgs_of(&pending_attrs, &stack),
                            use_path: None,
                        });
                    }
                    pending_attrs.clear();
                    p += 1;
                }
                (TokenKind::Ident, "impl") if Self::item_position(&stack) => {
                    // The next `{` opens the impl body: its methods are not
                    // module items.
                    pending = Some(Scope::Impl);
                    p += 1;
                }
                (TokenKind::Ident, "unsafe") => {
                    let next = text(p + 1);
                    if next == "{" {
                        self.unsafe_sites.push(UnsafeSite {
                            line: t.line,
                            kind: UnsafeKind::Block,
                            name: None,
                            enclosing_fn: Self::innermost_fn(&stack, &self.fns),
                            inside_unsafe_fn: Self::inside_unsafe_fn(&stack),
                            in_test: Self::stack_in_test(&stack),
                        });
                    } else if next == "impl" {
                        let name = (p + 2..p + 8)
                            .map(text)
                            .find(|s| {
                                !s.is_empty()
                                    && s.chars()
                                        .next()
                                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                                    && !matches!(*s, "impl" | "for" | "unsafe")
                            })
                            .map(|s| s.to_string());
                        self.unsafe_sites.push(UnsafeSite {
                            line: t.line,
                            kind: UnsafeKind::Impl,
                            name,
                            enclosing_fn: None,
                            inside_unsafe_fn: false,
                            in_test: Self::stack_in_test(&stack),
                        });
                    } else if next == "trait" {
                        self.unsafe_sites.push(UnsafeSite {
                            line: t.line,
                            kind: UnsafeKind::Trait,
                            name: Some(text(p + 2).to_string()),
                            enclosing_fn: None,
                            inside_unsafe_fn: false,
                            in_test: Self::stack_in_test(&stack),
                        });
                    }
                    // `unsafe fn` / `unsafe extern "C" fn` are recorded when
                    // the scan reaches the `fn` token itself.
                    p += 1;
                }
                (TokenKind::Ident, "Ordering") if text(p + 1) == ":" && text(p + 2) == ":" => {
                    let variant = text(p + 3).to_string();
                    if ATOMIC_ORDERINGS.contains(&variant.as_str()) {
                        self.ordering_sites.push(OrderingSite {
                            line: t.line,
                            variant,
                            enclosing_fn: Self::innermost_fn(&stack, &self.fns),
                            in_test: Self::stack_in_test(&stack),
                        });
                    }
                    p += 4;
                }
                (TokenKind::Ident, root @ ("std" | "core")) if text(p + 1) == ":" => {
                    // Inline qualified paths: std::sync::atomic::…,
                    // std::sync::Mutex::… (imports are caught in `use`).
                    let span: String = (p..p + 9).map(text).collect::<Vec<_>>().concat();
                    let in_test = Self::stack_in_test(&stack);
                    if span.starts_with(&format!("{root}::sync::atomic")) {
                        self.atomic_paths.push(AtomicPathSite {
                            line: t.line,
                            path: format!("{root}::sync::atomic"),
                            in_test,
                        });
                    } else {
                        for prim in ["Mutex", "RwLock", "Condvar"] {
                            if span.starts_with(&format!("{root}::sync::{prim}")) {
                                self.atomic_paths.push(AtomicPathSite {
                                    line: t.line,
                                    path: format!("{root}::sync::{prim}"),
                                    in_test,
                                });
                            }
                        }
                    }
                    p += 1;
                }
                (TokenKind::Punct, "{") => {
                    stack.push(pending.take().unwrap_or(Scope::Other));
                    p += 1;
                }
                (TokenKind::Punct, "}") => {
                    if let Some(Scope::Fn { index, .. }) = stack.last() {
                        let end = t.line;
                        let fnd = &mut self.fns[*index];
                        if let Some((start, _)) = fnd.body {
                            fnd.body = Some((start, end));
                        }
                    }
                    stack.pop();
                    p += 1;
                }
                (TokenKind::Punct, ";") => {
                    pending_attrs.clear();
                    p += 1;
                }
                _ => p += 1,
            }
        }
    }

    /// Records shim-bypassing prefixes found in a flattened `use` path.
    fn record_atomic_paths(&mut self, joined: &str, line: u32, in_test: bool) {
        for root in ["std", "core"] {
            let atomic = format!("{root}::sync::atomic");
            if joined.contains(&atomic) {
                self.atomic_paths.push(AtomicPathSite {
                    line,
                    path: atomic,
                    in_test,
                });
            }
            for prim in ["Mutex", "RwLock", "Condvar"] {
                let path = format!("{root}::sync::{prim}");
                // Match both `use std::sync::Mutex` and `use std::sync::{Mutex, …}`.
                let braced_root = format!("{root}::sync::{{");
                let hit = joined.contains(&path)
                    || (joined.contains(&braced_root)
                        && joined.split_once(&braced_root).is_some_and(|(_, rest)| {
                            rest.split('}')
                                .next()
                                .is_some_and(|inner| inner.split(',').any(|n| n.trim() == prim))
                        }));
                if hit {
                    self.atomic_paths.push(AtomicPathSite {
                        line,
                        path,
                        in_test,
                    });
                }
            }
        }
    }

    /// Visibility tokens directly before item position `p` (walks back over
    /// qualifier tokens).
    fn recent_vis(tokens: &[Token], nc: &[usize], p: usize) -> String {
        let mut vis = String::new();
        let mut q = p;
        let txt = |q: usize| -> &str { nc.get(q).map(|&i| tokens[i].text.as_str()).unwrap_or("") };
        // Walk back over: fn/struct/… keyword qualifiers and pub(...).
        while q > 0 {
            q -= 1;
            match txt(q) {
                "unsafe" | "const" | "async" | "extern" | "\"C\"" | "\"C-unwind\"" => continue,
                ")" => {
                    // possibly the close of pub(crate)/pub(super)
                    let mut r = q;
                    while r > 0 && txt(r) != "(" {
                        r -= 1;
                    }
                    if r > 0 && txt(r - 1) == "pub" {
                        let inner: String = (r + 1..q).map(txt).collect::<Vec<_>>().join("");
                        vis = format!("pub({inner})");
                    }
                    break;
                }
                "pub" => {
                    if vis.is_empty() {
                        vis = "pub".to_string();
                    }
                    break;
                }
                _ => break,
            }
        }
        vis
    }

    /// Parses a fn header at non-comment position `p` (the `fn` token).
    /// Returns the item plus the nc-position of the body `{`, if any.
    fn parse_fn(
        &self,
        tokens: &[Token],
        nc: &[usize],
        p: usize,
        stack: &[Scope],
        pending_attrs: &[String],
    ) -> (FnItem, Option<usize>) {
        let txt = |q: usize| -> &str { nc.get(q).map(|&i| tokens[i].text.as_str()).unwrap_or("") };
        let line_of = |q: usize| -> u32 { nc.get(q).map(|&i| tokens[i].line).unwrap_or(0) };
        let name = txt(p + 1).to_string();
        let fn_line = line_of(p);

        // Backward walk for qualifiers.
        let mut is_unsafe = false;
        let mut quals: Vec<&str> = Vec::new();
        let mut q = p;
        while q > 0 {
            q -= 1;
            match txt(q) {
                "unsafe" => {
                    is_unsafe = true;
                    quals.push("unsafe");
                }
                "const" => quals.push("const"),
                "async" => quals.push("async"),
                "extern" => quals.push("extern"),
                s if s.starts_with('"') => quals.push("\"abi\""),
                _ => break,
            }
        }
        quals.reverse();

        // Forward scan: find parameter parens, then the body `{` or `;`.
        let mut q = p + 2;
        let mut angle: i32 = 0;
        // Generics before the parens.
        while q < nc.len() {
            match txt(q) {
                "<" => angle += 1,
                ">" if txt(q.wrapping_sub(1)) != "-" => angle -= 1,
                "(" if angle <= 0 => break,
                _ => {}
            }
            q += 1;
        }
        let params_open = q;
        let mut depth = 0usize;
        while q < nc.len() {
            match txt(q) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            q += 1;
        }
        let params_close = q;

        // Normalize parameters to their types.
        let mut param_types: Vec<String> = Vec::new();
        {
            let mut cur: Vec<String> = Vec::new();
            let mut d_paren = 0i32;
            let mut d_angle = 0i32;
            let mut d_brack = 0i32;
            let flush = |cur: &mut Vec<String>, out: &mut Vec<String>| {
                if cur.is_empty() {
                    return;
                }
                let joined = cur.join(" ");
                // Drop the pattern before the first top-level `:` (keeping
                // `self` receivers whole; `::` never appears at the start
                // of a parameter's type position in this codebase).
                let ty = match joined.find(':') {
                    Some(i) if !joined[i + 1..].starts_with(':') => joined[i + 1..].to_string(),
                    _ => joined,
                };
                out.push(normalize_ws(&ty));
                cur.clear();
            };
            for r in params_open + 1..params_close {
                let s = txt(r);
                match s {
                    "(" => d_paren += 1,
                    ")" => d_paren -= 1,
                    "<" => d_angle += 1,
                    ">" if txt(r.wrapping_sub(1)) != "-" => d_angle -= 1,
                    "[" => d_brack += 1,
                    "]" => d_brack -= 1,
                    "," if d_paren == 0 && d_angle <= 0 && d_brack == 0 => {
                        flush(&mut cur, &mut param_types);
                        continue;
                    }
                    _ => {}
                }
                cur.push(s.to_string());
            }
            flush(&mut cur, &mut param_types);
        }

        // Return type / where clause tokens up to the body.
        let mut tail: Vec<String> = Vec::new();
        let mut q = params_close + 1;
        let mut body_open = None;
        while q < nc.len() {
            match txt(q) {
                "{" => {
                    body_open = Some(q);
                    break;
                }
                ";" => break,
                s => tail.push(s.to_string()),
            }
            q += 1;
        }

        let sig = normalize_ws(&format!(
            "{} fn({}) {}",
            quals.join(" "),
            param_types.join(", "),
            tail.join(" ")
        ));

        let in_test = Self::stack_in_test(stack)
            || pending_attrs
                .iter()
                .any(|a| a == "[test]" || a.contains("[test]"));
        let (hot_path, hot_path_private, safety_above) = self.fn_markers(fn_line, pending_attrs);
        let body = body_open.map(|b| (line_of(b), line_of(b))); // end patched at `}`

        (
            FnItem {
                name,
                line: fn_line,
                body,
                sig,
                is_unsafe,
                in_test,
                hot_path,
                hot_path_private,
                has_safety_comment: safety_above,
                attrs: pending_attrs.to_vec(),
                scope_attrs: Self::inherited_attrs(stack),
                mod_path: Self::mod_path(stack),
            },
            body_open,
        )
    }

    /// nc-position just past a bodyless fn header's `;`.
    fn after_fn_header(&self, nc: &[usize], tokens: &[Token], p: usize) -> usize {
        let txt = |q: usize| -> &str { nc.get(q).map(|&i| tokens[i].text.as_str()).unwrap_or("") };
        let mut q = p;
        let mut depth = 0i32;
        while q < nc.len() {
            match txt(q) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return q + 1,
                "{" => return q, // default body; let the main loop handle it
                _ => {}
            }
            q += 1;
        }
        q
    }

    /// (hot_path, hot_path_private, safety) markers from the comment block
    /// directly above `fn_line` (doc comments, line comments and attribute
    /// lines form one contiguous block).
    fn fn_markers(&self, fn_line: u32, _attrs: &[String]) -> (bool, bool, bool) {
        let block = self.comment_block_above(fn_line);
        let hot = block.iter().any(|l| l.contains("lint: hot-path"));
        let private = block.iter().any(|l| l.contains("lint: hot-path private"));
        let safety = block
            .iter()
            .any(|l| l.contains("SAFETY:") || l.contains("# Safety"));
        (hot, private, safety)
    }

    /// The contiguous run of comment/attribute lines directly above `line`
    /// (1-based), top-down order.
    pub fn comment_block_above(&self, line: u32) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let Some(raw) = self.lines.get((l - 1) as usize) else {
                break;
            };
            let t = raw.trim_start();
            if t.starts_with("//")
                || t.starts_with("#[")
                || t.starts_with("#!")
                || t.starts_with("*")
                || t.starts_with("/*")
            {
                out.push(t);
                l -= 1;
            } else {
                break;
            }
        }
        out.reverse();
        out
    }

    /// True if `line` (1-based) itself, or the comment block directly above
    /// it, contains `needle`.
    pub fn line_or_block_above_contains(&self, line: u32, needle: &str) -> bool {
        if let Some(raw) = self.lines.get((line - 1) as usize) {
            if let Some(pos) = raw.find("//") {
                if raw[pos..].contains(needle) {
                    return true;
                }
            }
        }
        self.comment_block_above(line)
            .iter()
            .any(|l| l.contains(needle))
    }

    /// Inline suppression: `// lint: allow(Rn[, …])` on the line or in the
    /// comment block directly above it.
    pub fn allowed_inline(&self, rule: &str, line: u32) -> bool {
        let check = |s: &str| -> bool {
            s.find("lint: allow(").is_some_and(|i| {
                s[i..]
                    .split_once('(')
                    .and_then(|(_, rest)| rest.split_once(')'))
                    .is_some_and(|(inner, _)| {
                        inner
                            .split(',')
                            .any(|r| r.trim().eq_ignore_ascii_case(rule))
                    })
            })
        };
        if let Some(raw) = self.lines.get((line - 1) as usize) {
            if let Some(pos) = raw.find("//") {
                if check(&raw[pos..]) {
                    return true;
                }
            }
        }
        self.comment_block_above(line).iter().any(|l| check(l))
    }

    /// All fn names (lowercased) defined in this file.
    pub fn fn_names_lower(&self) -> std::collections::HashSet<String> {
        self.fns.iter().map(|f| f.name.to_lowercase()).collect()
    }

    /// Non-test `Ordering::` sites inside the named fn (case-insensitive).
    pub fn ordering_sites_in_fn(&self, fn_name_lower: &str) -> usize {
        self.ordering_sites
            .iter()
            .filter(|s| {
                !s.in_test
                    && s.enclosing_fn
                        .as_deref()
                        .is_some_and(|f| f.to_lowercase() == fn_name_lower)
            })
            .count()
    }
}

/// Collapses whitespace runs to single spaces and trims.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Leaf names bound by a `use` path, from its token list (`use` and the
/// trailing `;` excluded), e.g. `core::sync::atomic::{AtomicU64, Ordering}`
/// → [AtomicU64, Ordering]; `x::y as z` → [z]; globs → ["*"].
fn use_leaf_names(toks: &[String]) -> Vec<String> {
    // Split into groups at top-level-of-brace commas; each group's bound
    // name is the token after `as` if present, else its last ident/`*`.
    let mut names = Vec::new();
    let mut group: Vec<&str> = Vec::new();
    let flush = |group: &mut Vec<&str>, names: &mut Vec<String>| {
        if group.is_empty() {
            return;
        }
        let name = group
            .iter()
            .position(|&s| s == "as")
            .and_then(|i| group.get(i + 1).copied())
            .or_else(|| {
                group
                    .iter()
                    .rev()
                    .find(|s| {
                        **s == "*"
                            || s.chars()
                                .next()
                                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    })
                    .copied()
            });
        if let Some(n) = name {
            names.push(n.to_string());
        }
        group.clear();
    };
    for s in toks {
        match s.as_str() {
            // A `{` means the tokens so far were a path prefix — they bind
            // nothing themselves.
            "{" => group.clear(),
            "}" | "," => flush(&mut group, &mut names),
            _ => group.push(s.as_str()),
        }
    }
    flush(&mut group, &mut names);
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
use core::sync::atomic::{AtomicU64, Ordering};

pub struct S { x: u64 }

impl S {
    /// Docs.
    // lint: hot-path
    #[inline]
    pub fn load_it(&self) -> u64 {
        self.inner.load(Ordering::Acquire)
    }

    // lint: hot-path private
    #[inline]
    pub fn owner_bump(&mut self) -> u64 {
        self.x += 1;
        self.x
    }

    /// # Safety
    /// Caller must hold the lock.
    pub unsafe fn dangerous(&self, p: *mut u64) {
        unsafe { *p = 1 };
    }
}

pub fn free_standing(x: u64) -> u64 {
    // SAFETY: x is valid by construction.
    let y = unsafe { core::mem::transmute::<u64, u64>(x) };
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() {
        let _ = Ordering::SeqCst;
    }
}
"#;

    #[test]
    fn model_basics() {
        let m = FileModel::parse("fixture.rs", SRC);
        assert!(m
            .atomic_paths
            .iter()
            .any(|a| a.path == "core::sync::atomic"));
        let load = m.fns.iter().find(|f| f.name == "load_it").unwrap();
        assert!(load.hot_path);
        assert!(!load.hot_path_private);
        assert!(!load.in_test);
        let bump = m.fns.iter().find(|f| f.name == "owner_bump").unwrap();
        assert!(bump.hot_path, "`hot-path private` implies hot-path");
        assert!(bump.hot_path_private);
        let dang = m.fns.iter().find(|f| f.name == "dangerous").unwrap();
        assert!(dang.is_unsafe);
        assert!(dang.has_safety_comment);
        let sites: Vec<_> = m.ordering_sites.iter().filter(|s| !s.in_test).collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].enclosing_fn.as_deref(), Some("load_it"));
        let test_sites: Vec<_> = m.ordering_sites.iter().filter(|s| s.in_test).collect();
        assert_eq!(test_sites.len(), 1);
        // unsafe block inside documented unsafe fn + one in a safe fn
        assert_eq!(m.unsafe_sites.len(), 2);
        let in_safe = m
            .unsafe_sites
            .iter()
            .find(|u| u.enclosing_fn.as_deref() == Some("free_standing"))
            .unwrap();
        assert!(!in_safe.inside_unsafe_fn);
        assert!(m.line_or_block_above_contains(in_safe.line, "SAFETY:"));
    }

    #[test]
    fn use_names_and_vis() {
        let m = FileModel::parse(
            "f.rs",
            "pub(crate) use core::sync::atomic::{AtomicU64, Ordering};\npub use x::y as z;\n",
        );
        let uses: Vec<_> = m.items.iter().filter(|i| i.kind == ItemKind::Use).collect();
        assert_eq!(uses[0].names, vec!["AtomicU64", "Ordering"]);
        assert_eq!(uses[0].vis, "pub(crate)");
        assert_eq!(uses[1].names, vec!["z"]);
    }

    #[test]
    fn signature_normalization_ignores_param_names() {
        let a = FileModel::parse(
            "a.rs",
            "pub(crate) unsafe fn f(worker: *mut Worker) -> bool { false }",
        );
        let b = FileModel::parse(
            "b.rs",
            "pub(crate) unsafe fn f(_: *mut Worker) -> bool { false }",
        );
        assert_eq!(a.fns[0].sig, b.fns[0].sig);
        let c = FileModel::parse(
            "c.rs",
            "pub(crate) unsafe fn f(_: *const Worker) -> bool { false }",
        );
        assert_ne!(a.fns[0].sig, c.fns[0].sig);
    }
}
