//! Diagnostics: one machine-readable line per finding.

use std::fmt;

/// A single lint finding. Renders as `file:line: rule-id: message` —
/// stable, greppable, and editor-clickable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    /// Rule id, e.g. `R2`.
    pub rule: &'static str,
    pub message: String,
    /// Enclosing function, when known (used for allowlist matching).
    pub context_fn: Option<String>,
}

impl Diagnostic {
    pub fn new(
        file: &str,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: message.into(),
            context_fn: None,
        }
    }

    pub fn in_fn(mut self, f: Option<&str>) -> Diagnostic {
        self.context_fn = f.map(|s| s.to_string());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics for stable output: by file, then line, then rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}
