//! nowa-lint: project-specific concurrency lints for the Nowa workspace.
//!
//! A self-contained (zero-dependency) static analysis pass that keeps
//! three artifacts in lock-step: the shipping source, the cfg-twinned
//! loom shims, and the DESIGN.md §7b memory-ordering audit. `rustc` and
//! `clippy` cannot see any of these contracts — they are project
//! conventions, not language rules — so this tool walks the workspace
//! with a hand-rolled lexer and a small item model and enforces them:
//!
//! * **R1 ordering-audit-drift** — `Ordering::` sites ↔ §7b audit rows.
//! * **R2 shim-discipline** — loom-shimmed modules never bypass
//!   `crate::sync`.
//! * **R3 cfg-twin parity** — twin arms export identical public surfaces.
//! * **R4 safety-comments** — every `unsafe` carries its written contract.
//! * **R5 hot-path hygiene** — `// lint: hot-path` fns never block or
//!   allocate.
//!
//! Diagnostics print as `file:line: rule-id: message`. Suppressions are
//! either inline (`// lint: allow(R2)` on or above the offending line) or
//! reasoned entries in `nowa-lint.allow` at the workspace root; stale
//! suppressions are themselves errors. See DESIGN.md §7c for the rule
//! catalogue.

pub mod allow;
pub mod audit;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parse::FileModel;

/// The parsed workspace: every `crates/*/src/**/*.rs` plus the §7b audit.
pub struct Workspace {
    pub files: Vec<FileModel>,
    pub audit: audit::Audit,
}

impl Workspace {
    /// Loads and parses the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rs_files: Vec<PathBuf> = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                let src = dir.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut rs_files)?;
                }
            }
        }
        rs_files.sort();

        let mut files = Vec::with_capacity(rs_files.len());
        for p in rs_files {
            let text = fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(FileModel::parse(&rel, &text));
        }

        let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        let audit = audit::parse("DESIGN.md", &design);
        Ok(Workspace { files, audit })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Runs every rule, applies the allowlist, and returns sorted diagnostics.
pub fn run_lint(ws: &Workspace, allowlist: &allow::Allowlist) -> Vec<diag::Diagnostic> {
    let raw = rules::run_all(ws);
    let mut out = allowlist.apply(raw);
    diag::sort(&mut out);
    out
}
