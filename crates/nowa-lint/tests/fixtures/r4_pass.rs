//! R4 pass fixture: every unsafe construct carries its written contract.

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads of one byte.
pub unsafe fn read_byte(p: *const u8) -> u8 {
    // SAFETY: valid-for-reads per this function's contract.
    unsafe { *p }
}

pub fn caller() -> u8 {
    let x = 7u8;
    // SAFETY: `&x` is a valid, live pointer.
    unsafe { read_byte(&x) }
}

pub struct Token(*mut u8);

// SAFETY: the pointee is never aliased across threads in this fixture.
unsafe impl Send for Token {}
