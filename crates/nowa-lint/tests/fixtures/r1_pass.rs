//! R1 pass fixture: the single `Ordering::` site is anchored by the
//! fixture audit's `publish` row.

use crate::sync::{AtomicU64, Ordering};

pub struct Fix {
    slot: AtomicU64,
}

impl Fix {
    pub fn publish(&self) {
        self.slot.store(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_sites_are_exempt() {
        let f = Fix {
            slot: AtomicU64::new(0),
        };
        f.publish();
        assert_eq!(f.slot.load(Ordering::SeqCst), 1);
    }
}
