//! R1 fail fixture: `sneak` performs an `Ordering::` access that no audit
//! row anchors and no `// ordering:` comment explains.

use crate::sync::{AtomicU64, Ordering};

pub struct Fix {
    slot: AtomicU64,
}

impl Fix {
    pub fn publish(&self) {
        self.slot.store(1, Ordering::Release);
    }

    pub fn sneak(&self) -> u64 {
        self.slot.load(Ordering::SeqCst)
    }
}
