//! R5 private-marker pass fixture: owner-only `Cell` state is fine, and a
//! deliberate advisory probe carries an inline allow.

use core::cell::Cell;

use crate::sync::{AtomicU64, Ordering};

// lint: hot-path private
pub fn owner_pop(tail: &Cell<u64>) -> Option<u64> {
    let t = tail.get();
    if t == 0 {
        return None;
    }
    tail.set(t - 1);
    Some(t)
}

// lint: hot-path private
pub fn owner_push_with_probe(tail: &Cell<u64>, hungry: &AtomicU64) -> bool {
    tail.set(tail.get() + 1);
    hungry.load(Ordering::Relaxed) != 0 // lint: allow(R5) — fixture-sanctioned advisory probe
}
