//! R2 fail fixture: a shim-ported module reaching around `crate::sync`
//! straight into `core::sync::atomic`, invisible to the loom models.

use core::sync::atomic::{AtomicU64, Ordering};

pub fn bump(x: &AtomicU64) {
    // ordering: monotone fixture counter, never read for synchronisation.
    x.fetch_add(1, Ordering::Relaxed);
}
