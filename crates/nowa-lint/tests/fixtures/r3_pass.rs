//! R3 pass fixture: both cfg-twin arms export the same public surface
//! with identical signatures.

#[cfg(feature = "trace")]
mod imp {
    pub(crate) fn on_spawn(worker: usize) {
        let _ = worker;
    }

    pub(crate) fn on_steal(worker: usize, victim: usize) {
        let _ = (worker, victim);
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    pub(crate) fn on_spawn(worker: usize) {
        let _ = worker;
    }

    pub(crate) fn on_steal(worker: usize, victim: usize) {
        let _ = (worker, victim);
    }
}

pub(crate) use imp::{on_spawn, on_steal};
