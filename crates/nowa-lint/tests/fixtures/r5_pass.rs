//! R5 pass fixture: a hot-path fn that stays on atomics, plus an inline
//! allow for a deliberate exception.

use crate::sync::{AtomicU64, Ordering};

// lint: hot-path
pub fn fast(x: &AtomicU64) -> u64 {
    // ordering: fixture counter.
    x.fetch_add(1, Ordering::Relaxed)
}

// lint: hot-path
pub fn fast_with_exception(items: &mut Vec<u64>) {
    items.push(1); // lint: allow(R5) — fixture-sanctioned exception
}
