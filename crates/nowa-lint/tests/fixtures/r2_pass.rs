//! R2 pass fixture: a shim-ported module taking its atomics from
//! `crate::sync`, as the loom discipline requires.

use crate::sync::{AtomicU64, Ordering};

pub fn bump(x: &AtomicU64) {
    // ordering: monotone fixture counter, never read for synchronisation.
    x.fetch_add(1, Ordering::Relaxed);
}
