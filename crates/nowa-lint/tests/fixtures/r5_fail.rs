//! R5 fail fixture: a hot-path fn that allocates.

// lint: hot-path
pub fn fast() -> Box<u64> {
    Box::new(42)
}
