//! R5 private-marker fail fixture: a claimed-private fast path that
//! synchronizes through a shared atomic.

use crate::sync::{AtomicU64, Ordering};

// lint: hot-path private
pub fn fast(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
