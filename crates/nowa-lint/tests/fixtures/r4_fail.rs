//! R4 fail fixture: an undocumented unsafe fn, an uncommented unsafe
//! block, and a bare unsafe impl.

pub unsafe fn read_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn caller() -> u8 {
    let x = 7u8;
    unsafe { read_byte(&x) }
}

pub struct Token(*mut u8);

unsafe impl Send for Token {}
