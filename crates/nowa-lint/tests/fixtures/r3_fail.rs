//! R3 fail fixture: the trace arm grew a hook the no-op arm never got —
//! the build breaks only with the feature off, i.e. in someone else's CI.

#[cfg(feature = "trace")]
mod imp {
    pub(crate) fn on_spawn(worker: usize) {
        let _ = worker;
    }

    pub(crate) fn on_steal(worker: usize, victim: usize) {
        let _ = (worker, victim);
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    pub(crate) fn on_spawn(worker: usize) {
        let _ = worker;
    }
}

pub(crate) use imp::on_spawn;
