//! Fixture tests: each rule must fire on its violating fixture and stay
//! silent on the passing one. Fixtures are parsed under *mapped* paths
//! (e.g. `crates/nowa-deque/src/cl.rs`) so the shipped scope configuration
//! — shim module lists, audit scope, twin files — is what gets exercised,
//! not a parallel test-only configuration.

use nowa_lint::allow::Allowlist;
use nowa_lint::audit;
use nowa_lint::parse::FileModel;
use nowa_lint::{run_lint, Workspace};

fn workspace(files: &[(&str, &str)], audit_md: &str) -> Workspace {
    Workspace {
        files: files
            .iter()
            .map(|(path, text)| FileModel::parse(path, text))
            .collect(),
        audit: audit::parse("DESIGN.md", audit_md),
    }
}

/// Diagnostics of one rule, with no allowlist in play.
fn findings(ws: &Workspace, rule: &str) -> Vec<String> {
    run_lint(ws, &Allowlist::default())
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.to_string())
        .collect()
}

const AUDIT: &str = include_str!("fixtures/r1_audit.md");
const AUDIT_STALE: &str = include_str!("fixtures/r1_audit_stale.md");

#[test]
fn r1_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/r1fix.rs",
            include_str!("fixtures/r1_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R1"), Vec::<String>::new());
}

#[test]
fn r1_fires_on_unaudited_ordering_site() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/r1fix.rs",
            include_str!("fixtures/r1_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R1");
    assert_eq!(out.len(), 1, "exactly the `sneak` site drifts: {out:?}");
    assert!(out[0].contains("sneak"), "{out:?}");
}

#[test]
fn r1_fires_on_stale_audit_anchor() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/r1fix.rs",
            include_str!("fixtures/r1_pass.rs"),
        )],
        AUDIT_STALE,
    );
    let out = findings(&ws, "R1");
    assert_eq!(out.len(), 1, "exactly the `ghost` row is stale: {out:?}");
    assert!(out[0].contains("ghost"), "{out:?}");
}

#[test]
fn r2_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/cl.rs",
            include_str!("fixtures/r2_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R2"), Vec::<String>::new());
}

#[test]
fn r2_fires_on_direct_atomic_import_in_shim_module() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/cl.rs",
            include_str!("fixtures/r2_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R2");
    assert!(!out.is_empty());
    assert!(out[0].contains("core::sync::atomic"), "{out:?}");
}

#[test]
fn r2_ignores_the_same_import_outside_shim_modules() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/stats.rs",
            include_str!("fixtures/r2_fail.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R2"), Vec::<String>::new());
}

#[test]
fn r3_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/obs.rs",
            include_str!("fixtures/r3_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R3"), Vec::<String>::new());
}

#[test]
fn r3_fires_on_one_sided_twin_item() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/obs.rs",
            include_str!("fixtures/r3_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R3");
    assert!(!out.is_empty());
    assert!(out.iter().any(|d| d.contains("on_steal")), "{out:?}");
}

#[test]
fn r4_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/fix4.rs",
            include_str!("fixtures/r4_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R4"), Vec::<String>::new());
}

#[test]
fn r4_fires_on_undocumented_unsafe() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/fix4.rs",
            include_str!("fixtures/r4_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R4");
    // The undocumented unsafe fn, the bare block in `caller`, and the
    // bare `unsafe impl Send`. The block *inside* the unsafe fn is exempt
    // (the fn-level contract covers it; rustc's own
    // `unsafe_op_in_unsafe_fn` handles the mechanics).
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn r4_ignores_files_outside_safety_scope() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/fix4.rs",
            include_str!("fixtures/r4_fail.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R4"), Vec::<String>::new());
}

#[test]
fn r5_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/fix5.rs",
            include_str!("fixtures/r5_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R5"), Vec::<String>::new());
}

#[test]
fn r5_fires_on_hot_path_allocation() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/fix5.rs",
            include_str!("fixtures/r5_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R5");
    assert!(!out.is_empty());
    assert!(out[0].contains("Box::new"), "{out:?}");
}

#[test]
fn r5_private_pass_fixture_is_clean() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/fix5p.rs",
            include_str!("fixtures/r5_private_pass.rs"),
        )],
        AUDIT,
    );
    assert_eq!(findings(&ws, "R5"), Vec::<String>::new());
}

#[test]
fn r5_private_fires_on_shared_atomic() {
    let ws = workspace(
        &[(
            "crates/nowa-deque/src/fix5p.rs",
            include_str!("fixtures/r5_private_fail.rs"),
        )],
        AUDIT,
    );
    let out = findings(&ws, "R5");
    assert_eq!(out.len(), 1, "exactly the `load` probe fires: {out:?}");
    assert!(out[0].contains("load"), "{out:?}");
    assert!(out[0].contains("zero-shared-atomic"), "{out:?}");
}

#[test]
fn r5_plain_hot_path_marker_permits_atomics() {
    // The same body under the *plain* marker is legal — atomics are the
    // point of most hot paths; only the `private` claim bans them.
    let src = include_str!("fixtures/r5_private_fail.rs").replace("hot-path private", "hot-path");
    let ws = workspace(&[("crates/nowa-deque/src/fix5p.rs", src.as_str())], AUDIT);
    assert_eq!(findings(&ws, "R5"), Vec::<String>::new());
}

#[test]
fn allowlist_suppresses_and_reports_stale_entries() {
    let ws = workspace(
        &[(
            "crates/nowa-runtime/src/fix5.rs",
            include_str!("fixtures/r5_fail.rs"),
        )],
        AUDIT,
    );
    let list = Allowlist::parse(
        "nowa-lint.allow",
        "R5 | src/fix5.rs | fast | Box::new | fixture exception\n\
         R5 | src/gone.rs | *    | *        | suppresses nothing\n",
    );
    let out = run_lint(&ws, &list);
    assert!(
        !out.iter().any(|d| d.rule == "R5"),
        "the R5 finding is suppressed: {out:?}"
    );
    assert!(
        out.iter()
            .any(|d| d.rule == "ALLOW" && d.message.contains("stale")),
        "the unused entry is reported: {out:?}"
    );
}
