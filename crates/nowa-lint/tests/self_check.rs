//! The repo self-check: the shipped tree must be lint-clean under its own
//! allowlist. This is the test that turns the lint from a tool you *can*
//! run into an invariant `cargo test` enforces — seeding an unaudited
//! `Ordering::` site, a shim bypass, a one-sided cfg twin, a bare
//! `unsafe`, or a stale suppression anywhere in the workspace fails here.

use std::path::Path;

use nowa_lint::allow::Allowlist;
use nowa_lint::{run_lint, Workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        !ws.files.is_empty(),
        "workspace walk found no sources — wrong root?"
    );
    assert!(
        !ws.audit.entries.is_empty(),
        "DESIGN.md §7b parsed to zero audit rows — wrong root or broken appendix?"
    );

    let allow_text = std::fs::read_to_string(root.join("nowa-lint.allow")).unwrap_or_default();
    let allowlist = Allowlist::parse("nowa-lint.allow", &allow_text);

    let diags = run_lint(&ws, &allowlist);
    assert!(
        diags.is_empty(),
        "nowa-lint found {} finding(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
