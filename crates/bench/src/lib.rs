//! Criterion benchmarks live in `benches/`; this library is intentionally
//! empty.
