//! Join-coordination mechanisms under contention: Nowa's flat wait-free
//! counter (one `fetch_sub` per join, §IV-B), a mutex-guarded count
//! (Fibril, Listing 2), and a SNZI tree (Acar et al., §II-D related work).
//!
//! Single-site traffic favours the flat counter (that is the paper's
//! argument for keeping the state inline in the frame); the SNZI's
//! distributed leaves pay extra CASes per operation.

use criterion::{criterion_group, criterion_main, Criterion};
use nowa_runtime::Snzi;
use std::hint::black_box;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Barrier};

const OPS: usize = 20_000;
const THREADS: usize = 4;

fn contend<F: Fn(usize) + Sync + Send + 'static>(f: Arc<F>) {
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let f = f.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..OPS / THREADS {
                    f(t);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn benches(c: &mut Criterion) {
    c.bench_function("join_mech/flat_counter/uncontended", |b| {
        let counter = AtomicI64::new(i64::MAX);
        b.iter(|| black_box(counter.fetch_sub(1, Ordering::AcqRel)))
    });

    c.bench_function("join_mech/snzi/uncontended", |b| {
        let snzi = Snzi::new(8);
        b.iter(|| {
            snzi.arrive(black_box(0));
            snzi.depart(0);
        })
    });

    c.bench_function("join_mech/flat_counter/contended", |b| {
        b.iter(|| {
            let counter = Arc::new(AtomicI64::new(i64::MAX));
            let c2 = counter.clone();
            contend(Arc::new(move |_| {
                black_box(c2.fetch_sub(1, Ordering::AcqRel));
            }));
        })
    });

    c.bench_function("join_mech/mutex_count/contended", |b| {
        b.iter(|| {
            let counter = Arc::new(std::sync::Mutex::new(0i64));
            let c2 = counter.clone();
            contend(Arc::new(move |_| {
                *c2.lock().unwrap() -= 1;
            }));
        })
    });

    c.bench_function("join_mech/snzi/contended_per_leaf", |b| {
        b.iter(|| {
            let snzi = Arc::new(Snzi::new(THREADS));
            let s2 = snzi.clone();
            contend(Arc::new(move |leaf| {
                s2.arrive(leaf);
                s2.depart(leaf);
            }));
        })
    });
}

criterion_group! {
    name = join_mechanisms;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(900)).warm_up_time(std::time::Duration::from_millis(200));
    targets = benches
}
criterion_main!(join_mechanisms);
