//! Work-stealing deque micro-latency: the §II-A/§II-D comparison surface.
//!
//! `push+pop` measures the owner's uncontended hot path (what every spawn
//! pays); `push+steal` measures the thief path; `ping` measures the
//! one-element owner/thief arbitration.

use criterion::{criterion_group, criterion_main, Criterion};
use nowa_deque::{Abp, Cl, DequeAlgo, Locked, Steal, StealerOps, The, WorkerOps};
use std::hint::black_box;

fn bench_owner_ops<A: DequeAlgo>(c: &mut Criterion) {
    let (worker, _stealer) = A::create::<usize>(1024);
    c.bench_function(&format!("deque/{}/push_pop", A::NAME), |b| {
        b.iter(|| {
            worker.push(black_box(7)).unwrap();
            black_box(worker.pop())
        })
    });
}

fn bench_steal_ops<A: DequeAlgo>(c: &mut Criterion) {
    let (worker, stealer) = A::create::<usize>(1024);
    c.bench_function(&format!("deque/{}/push_steal", A::NAME), |b| {
        b.iter(|| {
            if worker.push(black_box(7)).is_err() {
                // The ABP deque's non-ring indices run off the buffer when
                // only steals free space (§II-D); the owner's pop-on-empty
                // triggers its reset mitigation.
                let _ = worker.pop();
                worker.push(black_box(7)).unwrap();
            }
            match stealer.steal() {
                Steal::Success(v) => black_box(v),
                _ => 0,
            }
        })
    });
}

fn bench_batch<A: DequeAlgo>(c: &mut Criterion) {
    let (worker, stealer) = A::create::<usize>(256);
    c.bench_function(&format!("deque/{}/batch64_mixed", A::NAME), |b| {
        b.iter(|| {
            for i in 0..64 {
                worker.push(i).unwrap();
            }
            for _ in 0..32 {
                black_box(worker.pop());
            }
            for _ in 0..32 {
                black_box(stealer.steal().success());
            }
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_owner_ops::<Cl>(c);
    bench_owner_ops::<The>(c);
    bench_owner_ops::<Abp>(c);
    bench_owner_ops::<Locked>(c);
    bench_steal_ops::<Cl>(c);
    bench_steal_ops::<The>(c);
    bench_steal_ops::<Abp>(c);
    bench_steal_ops::<Locked>(c);
    bench_batch::<Cl>(c);
    bench_batch::<The>(c);
}

criterion_group! {
    name = deque_ops;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = benches
}
criterion_main!(deque_ops);
