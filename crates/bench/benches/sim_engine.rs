//! Throughput of the discrete-event simulator itself (events per second),
//! plus one-shot timings of the per-figure sweep building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use nowa_sim::{bench_dags, simulate, SimBench, SimConfig, SimFlavor};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let dag = bench_dags::generate(SimBench::Fib, 18);
    c.bench_function("sim/fib18/nowa/p16", |b| {
        b.iter(|| black_box(simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 16)).makespan))
    });
    c.bench_function("sim/fib18/fibril/p16", |b| {
        b.iter(|| black_box(simulate(&dag, SimConfig::new(SimFlavor::FibrilLock, 16)).makespan))
    });
    c.bench_function("sim/fib18/nowa/p256", |b| {
        b.iter(|| black_box(simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 256)).makespan))
    });
    let nq = bench_dags::generate(SimBench::Nqueens, 9);
    c.bench_function("sim/nqueens9/gomp/p64", |b| {
        b.iter(|| black_box(simulate(&nq, SimConfig::new(SimFlavor::GlobalQueueGomp, 64)).makespan))
    });
    c.bench_function("sim/dag_generation/fib20", |b| {
        b.iter(|| black_box(bench_dags::generate(SimBench::Fib, 20).tasks.len()))
    });
}

criterion_group! {
    name = sim_engine;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = benches
}
criterion_main!(sim_engine);
