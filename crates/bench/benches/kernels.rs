//! The twelve Table I kernels at `Tiny` scale under the Nowa runtime and
//! the Fibril-style baseline — the real-runtime counterpart of the Fig. 7
//! comparison (host-limited; the thread sweep lives in `nowa-bench fig7`).

use criterion::{criterion_group, criterion_main, Criterion};
use nowa_kernels::{BenchId, Size};
use nowa_runtime::{Config, Flavor, Runtime};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .max(2);
    let nowa = Runtime::new(Config::with_workers(workers)).unwrap();
    let fibril = Runtime::new(Config::with_workers(workers).flavor(Flavor::FIBRIL)).unwrap();

    for bench in BenchId::ALL {
        c.bench_function(&format!("kernel/{}/serial", bench.name()), |b| {
            b.iter(|| black_box(bench.run(Size::Tiny)))
        });
        c.bench_function(&format!("kernel/{}/nowa", bench.name()), |b| {
            b.iter(|| nowa.run(|| black_box(bench.run(Size::Tiny))))
        });
        c.bench_function(&format!("kernel/{}/fibril", bench.name()), |b| {
            b.iter(|| fibril.run(|| black_box(bench.run(Size::Tiny))))
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(150));
    targets = benches
}
criterion_main!(kernels);
