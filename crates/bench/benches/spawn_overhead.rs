//! Spawn/sync fast-path overhead per runtime flavor: the price of one
//! `join2` whose continuation is *not* stolen (the common case §II-B
//! optimises for), and the serial-elision baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use nowa_runtime::{join2, Config, Flavor, Runtime};
use std::hint::black_box;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn benches(c: &mut Criterion) {
    c.bench_function("spawn/serial_elision_fib16", |b| {
        b.iter(|| black_box(fib_serial(black_box(16))))
    });

    for flavor in [
        Flavor::NOWA,
        Flavor::NOWA_THE,
        Flavor::NOWA_ABP,
        Flavor::FIBRIL,
    ] {
        // One worker: every continuation is popped back — pure fast path.
        let rt = Runtime::new(Config::with_workers(1).flavor(flavor)).unwrap();
        c.bench_function(&format!("spawn/{}/fib16_1worker", flavor.name()), |b| {
            b.iter(|| rt.run(|| black_box(fib(black_box(16)))))
        });
    }

    // Per-join2 cost in isolation (two trivial closures).
    let rt = Runtime::new(Config::with_workers(1)).unwrap();
    c.bench_function("spawn/nowa-cl/single_join2", |b| {
        b.iter(|| {
            rt.run(|| {
                let (x, y) = join2(|| black_box(1u64), || black_box(2u64));
                x + y
            })
        })
    });
}

criterion_group! {
    name = spawn_overhead;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = benches
}
criterion_main!(spawn_overhead);
