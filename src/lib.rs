//! # nowa — a wait-free continuation-stealing concurrency platform
//!
//! Facade crate of the reproduction of *“Nowa: A Wait-Free
//! Continuation-Stealing Concurrency Platform”* (Schmaus, Pfeiffer,
//! Schröder-Preikschat, Hönig, Nolte — IPDPS 2021). It re-exports the
//! workspace's building blocks:
//!
//! * [`runtime`] — the Nowa runtime itself: fully-strict fork/join on
//!   fibers with genuine continuation stealing, the wait-free join
//!   protocol of §IV, selectable work-stealing deques, and the practical
//!   cactus-stack implementation with the §V-B `madvise` knob.
//! * [`deque`] — Chase–Lev, THE, ABP and locked work-stealing deques.
//! * [`context`] — machine contexts, guarded stacks, stack pools.
//! * [`kernels`] — the twelve Table I benchmarks (parallel + serial
//!   elision).
//! * [`baselines`] — TBB-, libomp- and libgomp-style comparator runtimes
//!   that run the same kernels through the same API.
//! * [`sim`] — the discrete-event scalability simulator used to regenerate
//!   the paper's 1–256-thread figures on small hosts.
//!
//! ## Quick start
//!
//! ```
//! use nowa::{join2, Config, Runtime};
//!
//! fn fib(n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
//!     a + b
//! }
//!
//! let rt = Runtime::new(Config::with_workers(4)).unwrap();
//! assert_eq!(rt.run(|| fib(20)), 6765);
//! ```
//!
//! See the `examples/` directory for runnable scenarios and the
//! `nowa-bench` binary (crate `nowa-harness`) for the paper's experiments.

pub use nowa_baselines as baselines;
pub use nowa_context as context;
pub use nowa_deque as deque;
pub use nowa_kernels as kernels;
pub use nowa_runtime as runtime;
pub use nowa_sim as sim;

pub use nowa_runtime::slice;
pub use nowa_runtime::time;
pub use nowa_runtime::{
    block_on, for_each, in_task, join2, join3, join4, map_reduce, par_for, par_map, sleep, timeout,
    AsyncFd, ChaosConfig, Config, Flavor, JoinHandle, MadvisePolicy, Region, Runtime, SplitConfig,
    StackError, StatsSnapshot,
};
