//! Guard-page overflow diagnostics, tested in a subprocess.
//!
//! Overflowing a fiber stack is fatal by design — the SIGSEGV handler
//! prints a diagnostic naming the worker and the stack bounds, then
//! re-raises with the default disposition so the process dies with the
//! honest signal. That can only be observed from outside: the test
//! re-executes its own binary with `NOWA_GUARD_CRASH=1`, which unlocks the
//! ignored `crash_helper` test below, and asserts on the child's exit
//! status and stderr.

use std::process::Command;

#[test]
fn stack_overflow_reports_guard_page_hit() {
    let exe = std::env::current_exe().expect("own test binary path");
    let out = Command::new(exe)
        .args([
            "crash_helper",
            "--exact",
            "--include-ignored",
            "--nocapture",
        ])
        .env("NOWA_GUARD_CRASH", "1")
        .output()
        .expect("spawn crash helper");

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "deliberate stack overflow should kill the child, got {:?}\nstderr:\n{stderr}",
        out.status
    );
    assert!(
        stderr.contains("nowa: fiber stack overflow: guard page hit on worker 0"),
        "missing guard-page diagnostic in child stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("stack bounds:"),
        "diagnostic lacks the fiber stack bounds:\n{stderr}"
    );
    assert!(
        stderr.contains("hint: raise Config::stack_size"),
        "diagnostic lacks the remediation hint:\n{stderr}"
    );
}

/// With tracing compiled in and enabled, the crash hook additionally dumps
/// the trace report collected at the moment of death.
#[cfg(feature = "trace")]
#[test]
fn stack_overflow_dumps_trace_report() {
    let exe = std::env::current_exe().expect("own test binary path");
    let out = Command::new(exe)
        .args([
            "crash_helper",
            "--exact",
            "--include-ignored",
            "--nocapture",
        ])
        .env("NOWA_GUARD_CRASH", "1")
        .env("NOWA_GUARD_TRACE", "1")
        .output()
        .expect("spawn crash helper");

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains("nowa: fiber stack overflow"),
        "missing guard-page diagnostic:\n{stderr}"
    );
    assert!(
        stderr.contains("nowa: trace report at crash"),
        "crash hook did not dump the trace report:\n{stderr}"
    );
}

/// Burns ~1 KiB of stack per frame, touching all of it so the descent
/// cannot skip over the guard page.
#[inline(never)]
fn grind(depth: u64) -> u64 {
    let mut buf = [0u8; 1024];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (depth as u8).wrapping_add(i as u8);
    }
    let sum: u64 = buf.iter().map(|&b| u64::from(b)).sum();
    if depth == 0 {
        return sum;
    }
    sum.wrapping_add(std::hint::black_box(grind(depth - 1)))
}

/// Not a test on its own: only meaningful when re-executed by
/// `stack_overflow_reports_guard_page_hit` (it dies with SIGSEGV).
#[test]
#[ignore = "crash helper; runs only under NOWA_GUARD_CRASH=1 in a subprocess"]
fn crash_helper() {
    if std::env::var_os("NOWA_GUARD_CRASH").is_none() {
        return;
    }
    let config = nowa::Config::with_workers(1)
        .stack_size(64 * 1024)
        .tracing(std::env::var_os("NOWA_GUARD_TRACE").is_some());
    let rt = nowa::Runtime::new(config).expect("runtime");
    // 64 KiB usable / ~1 KiB per frame: overflows after <100 frames.
    let sum = rt.run(|| grind(1 << 20));
    unreachable!("survived a guaranteed stack overflow (sum {sum})");
}
