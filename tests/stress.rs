//! Failure injection and stress: tiny stacks, tiny deques, steal storms,
//! deep suspension chains, concurrent external submitters.

use nowa::kernels::{BenchId, Size};
use nowa::{join2, Config, Flavor, MadvisePolicy, Runtime, SplitConfig};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn steal_storm_many_workers_tiny_grain() {
    // Far more workers than cores: heavy oversubscription forces constant
    // preemption mid-protocol, a good way to shake out ordering bugs.
    let rt = Runtime::new(Config::with_workers(8)).unwrap();
    for _ in 0..5 {
        assert_eq!(rt.run(|| fib(18)), 2584);
    }
    let stats = rt.stats();
    assert_eq!(stats.spawns, stats.continuations_consumed());
}

#[test]
fn tiny_stacks_with_madvise() {
    let mut config = Config::with_workers(4).madvise(MadvisePolicy::DontNeed);
    config.stack_size = 32 * 1024;
    let rt = Runtime::new(config).unwrap();
    assert_eq!(rt.run(|| fib(15)), 610);
}

#[test]
fn tiny_deque_capacity_all_flavors() {
    for flavor in [
        Flavor::NOWA,
        Flavor::NOWA_THE,
        Flavor::NOWA_ABP,
        Flavor::FIBRIL,
    ] {
        let mut config = Config::with_workers(4).flavor(flavor);
        config.deque_capacity = 2;
        let rt = Runtime::new(config).unwrap();
        assert_eq!(rt.run(|| fib(16)), 987, "flavor {}", flavor.name());
    }
}

#[test]
fn tiny_stack_cache_forces_pool_traffic() {
    let mut config = Config::with_workers(4);
    config.stack_cache = 0; // every spawn goes to the global pool
    config.pool_stripes = 1;
    let rt = Runtime::new(config).unwrap();
    assert_eq!(rt.run(|| fib(14)), 377);
    let (gets, puts, _maps) = rt.pool_stats();
    assert!(gets > 0 && puts > 0, "global pool must recirculate");
}

#[test]
fn striped_pool_ablation() {
    // The paper suggests pool improvements; the striped pool is ours.
    let mut config = Config::with_workers(4);
    config.stack_cache = 0;
    config.pool_stripes = 8;
    let rt = Runtime::new(config).unwrap();
    assert_eq!(rt.run(|| BenchId::Cholesky.run(Size::Tiny)), {
        BenchId::Cholesky.run(Size::Tiny)
    });
}

#[test]
fn deep_suspension_chain() {
    // A right-leaning spawn chain where every sync suspends: child n
    // sleeps until its sibling chain finished.
    fn chain(depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join2(
            || {
                // Make the spawned child slow so the continuation reaches
                // the sync first and must suspend.
                std::thread::yield_now();
                chain(depth - 1)
            },
            || 0u64,
        );
        a + b
    }
    let rt = Runtime::new(Config::with_workers(4)).unwrap();
    assert_eq!(rt.run(|| chain(64)), 1);
    // With 4 workers and yields, at least some syncs must have suspended.
    let stats = rt.stats();
    assert_eq!(
        stats.suspensions, stats.sync_resumes,
        "every suspension resumed"
    );
}

#[test]
fn concurrent_external_submitters() {
    // Multiple external threads submit root tasks to one runtime.
    let rt = std::sync::Arc::new(Runtime::with_workers(4).unwrap());
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let rt = rt.clone();
            std::thread::spawn(move || rt.run(move || fib(12) + i))
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), 144 + i as u64);
    }
}

#[test]
fn repeated_panics_do_not_poison_runtime() {
    let rt = Runtime::with_workers(3).unwrap();
    for i in 0..10 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|| {
                if i % 2 == 0 {
                    let (_, _) = join2(|| panic!("even round"), || 1);
                    unreachable!()
                } else {
                    fib(10)
                }
            })
        }));
        if i % 2 == 0 {
            assert!(result.is_err());
        } else {
            assert_eq!(result.unwrap(), 55);
        }
    }
}

#[test]
fn region_stress_many_linear_spawns() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let rt = Runtime::with_workers(4).unwrap();
    let total = AtomicU64::new(0);
    rt.run(|| {
        let region = nowa::Region::new();
        let total = &total;
        for i in 0..5_000u64 {
            // SAFETY: the atomic and loop index are Send; region syncs
            // before drop. `move` is load-bearing: a stolen continuation
            // advances `i` concurrently, so the child must capture its
            // value, not a reference into the loop frame.
            unsafe {
                region.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                })
            };
        }
        region.sync();
    });
    assert_eq!(total.into_inner(), 4999 * 5000 / 2);
}

/// Thief starvation (§6g): one producer strand spawning a long linear run
/// of tiny children against hungry thieves, with the smallest possible
/// promotion batch. With linear spawns the owner's deque never holds more
/// than one continuation, so batch-boundary promotion (which keeps one
/// item back) moves nothing — every continuation a thief gets must have
/// crossed the hunger-signal path. Steal conservation must survive, and
/// the thieves must actually eat.
#[test]
fn thief_starvation_tiny_promote_batch_all_flavors() {
    use std::sync::atomic::{AtomicU64, Ordering};
    for flavor in [
        Flavor::NOWA,
        Flavor::NOWA_THE,
        Flavor::NOWA_ABP,
        Flavor::NOWA_LOCKED_DEQUE,
        Flavor::FIBRIL,
    ] {
        let config = Config::with_workers(4).flavor(flavor).split(SplitConfig {
            enabled: true,
            promote_batch: 1,
            promote_on_wake: true,
        });
        let rt = Runtime::new(config).unwrap();
        let total = AtomicU64::new(0);
        rt.run(|| {
            let region = nowa::Region::new();
            let total = &total;
            for i in 0..20_000u64 {
                // Give the thieves CPU time: on a small host the producer
                // can otherwise finish before a thief ever sweeps (and a
                // thief that never runs never raises hunger).
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
                // SAFETY: as in `region_stress_many_linear_spawns` — the
                // child captures `i` by value and the region syncs before
                // drop.
                unsafe {
                    region.spawn(move || {
                        total.fetch_add(i, Ordering::Relaxed);
                    })
                };
            }
            region.sync();
        });
        assert_eq!(total.into_inner(), 19_999 * 20_000 / 2);
        let stats = rt.stats();
        assert_eq!(
            stats.spawns,
            stats.continuations_consumed(),
            "steal conservation violated under starvation, flavor {}",
            flavor.name()
        );
        assert!(
            stats.private_pops <= stats.fast_pops,
            "private pops are a subset of fast pops, flavor {}",
            flavor.name()
        );
        assert!(
            stats.promoted_items <= stats.spawns,
            "cannot promote more than was spawned, flavor {}",
            flavor.name()
        );
        if flavor == Flavor::FIBRIL {
            // The fused baseline has no private segment.
            assert_eq!(stats.promotions, 0, "fused deque cannot promote");
        } else {
            assert!(
                stats.promotions > 0,
                "hungry thieves never triggered a promotion, flavor {}",
                flavor.name()
            );
        }
    }
}

/// Seeded fault-injection stress (`--features chaos`): the scheduler is
/// battered with forced steal failures, forced suspensions, spurious
/// yields and injected stack-`mmap` failures, and must still produce
/// bit-identical results. Injection is counter-based, so a seed fully
/// determines the fault sequence.
#[cfg(feature = "chaos")]
mod chaos {
    use nowa::kernels::{BenchId, Size};
    use nowa::runtime::chaos::{ChaosPanic, ChaosSite};
    use nowa::{ChaosConfig, Config, Flavor, Runtime};

    fn chaos_runtime(flavor: Flavor, chaos: ChaosConfig, workers: usize) -> Runtime {
        let mut config = Config::with_workers(workers)
            .flavor(flavor)
            .stack_size(256 * 1024)
            .chaos(chaos);
        config.stack_cache = 0; // all stacks via the pool: mmap faults bite
        Runtime::new(config).unwrap()
    }

    #[test]
    fn seeded_chaos_preserves_results() {
        let consumed_before = nowa::context::chaos::consumed_map_failures();
        let mut injected = [0u64; nowa::runtime::chaos::SITES];
        for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
            for seed in [3] {
                let rt = chaos_runtime(flavor, ChaosConfig::aggressive(seed), 4);
                for bench in [BenchId::Fib, BenchId::Quicksort] {
                    let expected = bench.run(Size::Tiny); // serial elision
                    assert_eq!(
                        rt.run(|| bench.run(Size::Tiny)),
                        expected,
                        "{} diverged under {} seed {seed}",
                        bench.name(),
                        flavor.name()
                    );
                }
                let snap = rt.chaos_stats().unwrap();
                for (total, fired) in injected.iter_mut().zip(snap.injected) {
                    *total += fired;
                }
            }
        }
        // Every non-destructive fault kind must actually have fired.
        for site in [
            ChaosSite::StealFail,
            ChaosSite::ForceSuspend,
            ChaosSite::SpuriousYield,
            ChaosSite::MmapFail,
        ] {
            assert!(
                injected[site as usize] > 0,
                "no {site:?} fired across the sweep: {injected:?}"
            );
        }
        // The armed mmap failures really were consumed by the stack pool's
        // retry path, not just counted at the decision site.
        assert!(
            nowa::context::chaos::consumed_map_failures() > consumed_before,
            "no injected stack-map failure reached Stack::try_map"
        );
    }

    #[test]
    fn same_seed_same_injection_sequence() {
        let run = |seed| {
            let rt = chaos_runtime(Flavor::NOWA, ChaosConfig::aggressive(seed), 1);
            assert_eq!(rt.run(|| fib(12)), 144);
            rt.chaos_stats().unwrap()
        };
        // Single worker: the schedule is deterministic, so the replay must
        // visit and fire every site the exact same number of times.
        assert_eq!(run(11), run(11), "same seed, different injections");
        assert_ne!(
            run(11),
            run(12),
            "different seeds produced identical injection sequences (suspicious)"
        );
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = nowa::join2(|| fib(n - 1), || fib(n - 2));
            a + b
        }
    }

    #[test]
    fn starved_thieves_survive_forced_promotions() {
        use nowa::SplitConfig;

        // The ForcePromote site (armed in `aggressive`) alternates between
        // forcing an extra promotion batch and arming a promotion failure
        // (put-back path). Under a tiny promote batch both must leave the
        // results bit-identical across replays and conserve continuations.
        for flavor in [Flavor::NOWA, Flavor::NOWA_THE] {
            for replay in 0..2 {
                let mut config = Config::with_workers(4)
                    .flavor(flavor)
                    .stack_size(256 * 1024)
                    .chaos(ChaosConfig::aggressive(0xBEE5))
                    .split(SplitConfig {
                        enabled: true,
                        promote_batch: 1,
                        promote_on_wake: true,
                    });
                config.stack_cache = 0;
                let rt = Runtime::new(config).unwrap();
                assert_eq!(
                    rt.run(|| super::fib(16)),
                    987,
                    "flavor {} replay {replay} diverged",
                    flavor.name()
                );
                let snap = rt.chaos_stats().unwrap();
                assert!(
                    snap.injected[ChaosSite::ForcePromote as usize] > 0,
                    "ForcePromote never fired, flavor {} replay {replay}",
                    flavor.name()
                );
                let stats = rt.stats();
                assert_eq!(
                    stats.spawns,
                    stats.continuations_consumed(),
                    "conservation violated under forced promotions, \
                     flavor {} replay {replay}",
                    flavor.name()
                );
            }
        }
    }

    #[test]
    fn injected_child_panics_propagate() {
        for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
            let mut chaos = ChaosConfig::with_seed(9);
            chaos.child_panic = u16::MAX; // every spawned child panics
            let rt = chaos_runtime(flavor, chaos, 2);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.run(|| {
                    let (a, b) = nowa::join2(|| 1, || 2);
                    a + b
                })
            }));
            let payload = result.expect_err("injected child panic did not propagate");
            assert!(
                payload.downcast_ref::<ChaosPanic>().is_some(),
                "payload is not the injected ChaosPanic ({})",
                flavor.name()
            );
        }
    }
}

#[test]
fn mixed_kernels_back_to_back() {
    let rt = Runtime::with_workers(4).unwrap();
    for _round in 0..3 {
        for bench in BenchId::ALL {
            let expected = bench.run(Size::Tiny);
            assert_eq!(
                rt.run(|| bench.run(Size::Tiny)),
                expected,
                "{}",
                bench.name()
            );
        }
    }
}
