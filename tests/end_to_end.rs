//! Workspace-level integration: the facade crate, all runtime flavors,
//! all baseline pools and the simulator, exercised together.

use nowa::baselines::{BaselineKind, BaselinePool};
use nowa::kernels::{BenchId, Size};
use nowa::sim::{bench_dags, simulate, SimBench, SimConfig, SimFlavor};
use nowa::{join2, Config, Flavor, Runtime};

#[test]
fn facade_quickstart_compiles_and_runs() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let rt = Runtime::new(Config::with_workers(2)).unwrap();
    assert_eq!(rt.run(|| fib(20)), 6765);
}

#[test]
fn kernels_agree_across_all_real_runtimes() {
    // Serial elision is the oracle.
    let expected: Vec<(BenchId, f64)> = BenchId::ALL
        .iter()
        .map(|&b| (b, b.run(Size::Tiny)))
        .collect();

    for flavor in [Flavor::NOWA, Flavor::NOWA_THE, Flavor::FIBRIL] {
        let rt = Runtime::new(Config::with_workers(3).flavor(flavor)).unwrap();
        for (bench, want) in &expected {
            let got = rt.run(|| bench.run(Size::Tiny));
            assert_eq!(got, *want, "{} under {}", bench.name(), flavor.name());
        }
    }
    for kind in BaselineKind::ALL {
        let pool = BaselinePool::new(kind, 3);
        for (bench, want) in &expected {
            let got = pool.run(|| bench.run(Size::Tiny));
            assert_eq!(got, *want, "{} under {}", bench.name(), kind.name());
        }
    }
}

#[test]
fn continuation_conservation_holds_on_every_flavor() {
    // Every spawned continuation is consumed exactly once — popped back by
    // its spawner (fast path), stolen, or taken locally by the work-finding
    // loop. The counters must balance on every protocol × deque flavor.
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    for flavor in [
        Flavor::NOWA,
        Flavor::NOWA_THE,
        Flavor::NOWA_ABP,
        Flavor::NOWA_LOCKED_DEQUE,
        Flavor::FIBRIL,
    ] {
        let rt = Runtime::new(Config::with_workers(4).flavor(flavor)).unwrap();
        assert_eq!(rt.run(|| fib(20)), 6765, "under {}", flavor.name());
        let stats = rt.stats();
        assert!(stats.spawns > 0, "under {}", flavor.name());
        assert_eq!(
            stats.spawns,
            stats.continuations_consumed(),
            "conservation violated under {}: spawns {} vs fast {} + steals {} + own {}",
            flavor.name(),
            stats.spawns,
            stats.fast_pops,
            stats.steals,
            stats.own_takes,
        );
        assert_eq!(
            stats.steal_attempts(),
            stats.steals + stats.steal_empty + stats.steal_retry,
            "under {}",
            flavor.name()
        );
    }
}

#[test]
fn simulator_reproduces_headline_orderings() {
    // Fine-grained DAG at 256 workers with the figure-scale input:
    // wait-free beats locks beats the child-stealing and central-queue
    // baselines (Fig. 1 / Fig. 10 order at 256 threads).
    let dag = bench_dags::generate(SimBench::Fib, SimBench::Fib.default_scale());
    let speedup = |flavor: SimFlavor| simulate(&dag, SimConfig::new(flavor, 256)).speedup();
    let nowa = speedup(SimFlavor::NowaCl);
    let fibril = speedup(SimFlavor::FibrilLock);
    let tbb = speedup(SimFlavor::ChildStealTbb);
    let gomp = speedup(SimFlavor::GlobalQueueGomp);
    assert!(nowa > 1.3 * fibril, "nowa {nowa} vs fibril {fibril}");
    assert!(fibril > tbb, "fibril {fibril} vs tbb {tbb}");
    assert!(tbb > 3.0 * gomp, "tbb {tbb} vs gomp {gomp}");
}

#[test]
fn fig9_ordering_cl_at_least_the() {
    // §V-C: the CL queue unlocks performance the THE queue cannot.
    let dag = bench_dags::generate(SimBench::Fib, SimBench::Fib.quick_scale());
    let cl = simulate(&dag, SimConfig::new(SimFlavor::NowaCl, 256)).speedup();
    let the = simulate(&dag, SimConfig::new(SimFlavor::NowaThe, 256)).speedup();
    assert!(cl >= the, "cl {cl} vs the {the}");
}

#[test]
fn runtime_and_baseline_coexist() {
    // A Nowa runtime and a baseline pool in the same process, used from
    // the same (external) thread, must not interfere.
    let rt = Runtime::with_workers(2).unwrap();
    let pool = BaselinePool::new(BaselineKind::ChildStealTbb, 2);
    for _ in 0..10 {
        let a = rt.run(|| BenchId::Fib.run(Size::Tiny));
        let b = pool.run(|| BenchId::Fib.run(Size::Tiny));
        assert_eq!(a, b);
    }
}

#[test]
fn many_runtime_lifecycles_do_not_leak_stacks() {
    // Create/destroy runtimes repeatedly; each must shut down cleanly.
    for round in 0..15 {
        let rt = Runtime::new(Config::with_workers(3)).unwrap();
        let v = rt.run(|| nowa::map_reduce(0..100, 4, &|i| i as u64, &|a, b| a + b).unwrap_or(0));
        assert_eq!(v, 4950, "round {round}");
        drop(rt);
    }
}

#[test]
fn pool_stats_reflect_recirculation() {
    let rt = Runtime::new(Config::with_workers(4)).unwrap();
    let _ = rt.run(|| BenchId::Nqueens.run(Size::Tiny));
    let (gets, puts, maps) = rt.pool_stats();
    // Stacks must be recycled: far fewer maps than gets+hits overall.
    assert!(maps > 0, "at least the initial stacks are mapped");
    let _ = (gets, puts);
}
