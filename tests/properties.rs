//! Property-based tests over the whole platform: random fork/join trees
//! executed in parallel must agree with their serial elision, on every
//! runtime flavor; the simulator must conserve work; the §IV-B counter
//! algebra must hold for arbitrary fork/join sequences.

use nowa::sim::{simulate, DagBuilder, SimConfig, SimDag, SimFlavor};
use nowa::{Config, Flavor, Runtime};
use proptest::prelude::*;

/// A random fully-strict computation: a tree where each node either is a
/// leaf with a value or forks into 2–3 children combined with wrapping
/// arithmetic.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(u64),
    Fork(Vec<Tree>),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = any::<u64>().prop_map(Tree::Leaf);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop::collection::vec(inner, 2..=3).prop_map(Tree::Fork)
    })
}

fn eval(t: &Tree) -> u64 {
    match t {
        Tree::Leaf(v) => v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7),
        Tree::Fork(children) => {
            let results: Vec<u64> = match children.len() {
                2 => {
                    let (a, b) = nowa::join2(|| eval(&children[0]), || eval(&children[1]));
                    vec![a, b]
                }
                3 => {
                    let (a, b, c) = nowa::join3(
                        || eval(&children[0]),
                        || eval(&children[1]),
                        || eval(&children[2]),
                    );
                    vec![a, b, c]
                }
                _ => unreachable!("strategy yields 2..=3 children"),
            };
            results
                .into_iter()
                .fold(0u64, |acc, r| acc.rotate_left(11).wrapping_add(r))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel evaluation equals the serial elision on every flavor.
    #[test]
    fn random_trees_parallel_equals_serial(tree in tree_strategy()) {
        let expected = eval(&tree); // serial elision (no runtime)
        for flavor in [Flavor::NOWA, Flavor::FIBRIL] {
            let rt = Runtime::new(Config::with_workers(3).flavor(flavor)).unwrap();
            let got = rt.run(|| eval(&tree));
            prop_assert_eq!(got, expected, "flavor {}", flavor.name());
        }
    }
}

/// Random well-formed SimDags.
fn sim_dag_strategy() -> impl Strategy<Value = SimDag> {
    // A recipe: sequence of (work, fan_out) region descriptors per level.
    prop::collection::vec((1u64..500, 0usize..4, prop::bool::ANY), 1..12).prop_map(|recipe| {
        let mut b = DagBuilder::new();
        let mut frontier = vec![0usize];
        for (work, fan, use_call) in recipe {
            let mut next = Vec::new();
            for &task in &frontier {
                b.work(task, work);
                for i in 0..fan {
                    let child = if use_call && i == fan - 1 {
                        b.call(task)
                    } else {
                        b.spawn(task)
                    };
                    b.work(child, work / 2 + 1);
                    next.push(child);
                }
                if fan > 0 {
                    b.sync(task);
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine executes every strand exactly once: makespan is bounded
    /// below by span (and by work/P) and above by a generous overhead
    /// multiple, for every flavor.
    #[test]
    fn sim_work_conservation(dag in sim_dag_strategy(), p in 1usize..9) {
        prop_assert_eq!(dag.validate(), Ok(()));
        let work = dag.total_work();
        let span = dag.span();
        for flavor in [SimFlavor::NowaCl, SimFlavor::FibrilLock, SimFlavor::ChildStealTbb, SimFlavor::GlobalQueueGomp] {
            let r = simulate(&dag, SimConfig::new(flavor, p));
            prop_assert!(r.makespan >= span, "{}: makespan {} < span {}", flavor.name(), r.makespan, span);
            prop_assert!(r.makespan >= work / p as u64, "{}: beats work/P", flavor.name());
            // Every strand ran: speedup cannot exceed P.
            prop_assert!(r.speedup() <= p as f64 + 1e-9, "{}", flavor.name());
        }
    }

    /// Nowa's counter algebra (Eq. 1–5): for arbitrary interleavings of
    /// forks and joins, the restored counter equals alpha - omega.
    #[test]
    fn counter_restoration_algebra(events in prop::collection::vec(prop::bool::ANY, 0..64)) {
        const I_MAX: i64 = i64::MAX;
        let mut counter: i64 = I_MAX; // N_r' = I_max - omega
        let mut alpha: i64 = 0;
        let mut omega_shadow: i64 = 0;
        for fork in events {
            if fork {
                alpha += 1; // unsynchronised main-path increment
            } else if omega_shadow < alpha {
                counter -= 1; // joining strand: fetch_sub(1)
                omega_shadow += 1;
                // Invariant I/IV: joiners never observe <= 0 in phase 1.
                prop_assert!(counter > 0);
            }
        }
        // Explicit sync point: restore N_r = N_r' - (I_max - alpha), Eq. 5.
        let restored = counter - (I_MAX - alpha);
        prop_assert_eq!(restored, alpha - omega_shadow, "N_r == alpha - omega");
        prop_assert!(restored >= 0);
    }
}
