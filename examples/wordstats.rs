//! Text analytics with divide-and-conquer `map_reduce`: word count, longest
//! word and a letter histogram over a generated corpus, computed in one
//! parallel pass with an associative merge.
//!
//! ```text
//! cargo run --release --example wordstats
//! ```

use nowa::{map_reduce, Config, Runtime};

#[derive(Clone, Debug, Default)]
struct Stats {
    words: u64,
    longest: usize,
    letters: [u64; 26],
}

impl Stats {
    fn of_chunk(text: &str) -> Stats {
        let mut s = Stats::default();
        for word in text.split_whitespace() {
            s.words += 1;
            s.longest = s.longest.max(word.len());
            for b in word.bytes() {
                if b.is_ascii_lowercase() {
                    s.letters[(b - b'a') as usize] += 1;
                }
            }
        }
        s
    }

    fn merge(mut self, other: Stats) -> Stats {
        self.words += other.words;
        self.longest = self.longest.max(other.longest);
        for (a, b) in self.letters.iter_mut().zip(other.letters) {
            *a += b;
        }
        self
    }
}

/// Deterministic lorem-ipsum-ish corpus generator.
fn corpus(paragraphs: usize) -> Vec<String> {
    const WORDS: [&str; 12] = [
        "concurrency",
        "platform",
        "worker",
        "steal",
        "continuation",
        "sync",
        "spawn",
        "strand",
        "queue",
        "stack",
        "cactus",
        "waitfree",
    ];
    let mut seed = 0x5EEDu64;
    (0..paragraphs)
        .map(|_| {
            let mut p = String::new();
            for _ in 0..200 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                p.push_str(WORDS[(seed % WORDS.len() as u64) as usize]);
                p.push(' ');
            }
            p
        })
        .collect()
}

fn main() {
    let paragraphs = corpus(2_000);
    let rt = Runtime::new(Config::default()).expect("runtime");

    let stats = rt
        .run(|| {
            map_reduce(
                0..paragraphs.len(),
                16,
                &|i| Stats::of_chunk(&paragraphs[i]),
                &Stats::merge,
            )
        })
        .unwrap_or_default();

    println!("paragraphs: {}", paragraphs.len());
    println!("words:      {}", stats.words);
    println!("longest:    {} chars", stats.longest);
    let (top_idx, top_count) = stats
        .letters
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .unwrap();
    println!(
        "most common letter: '{}' ({} occurrences)",
        (b'a' + top_idx as u8) as char,
        top_count
    );

    // Sanity: the parallel answer matches a serial fold.
    let serial = paragraphs
        .iter()
        .map(|p| Stats::of_chunk(p))
        .fold(Stats::default(), Stats::merge);
    assert_eq!(serial.words, stats.words);
    assert_eq!(serial.letters, stats.letters);
    println!("verified against serial fold");
}
