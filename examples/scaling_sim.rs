//! Uses the protocol-replay simulator to plot (as text) how the wait-free
//! Nowa protocol and the lock-based Fibril protocol scale from 1 to 256
//! virtual workers on a fine-grained fork/join workload — the paper's
//! Figure 1 experiment, runnable on any host.
//!
//! ```text
//! cargo run --release --example scaling_sim
//! ```

use nowa::sim::{bench_dags, simulate, SimBench, SimConfig, SimFlavor};

fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    let bench = SimBench::Fib;
    let dag = bench_dags::generate(bench, bench.default_scale());
    println!(
        "simulated {} — {} tasks, {} spawns, work {:.2} ms, span {:.3} ms\n",
        bench.name(),
        dag.tasks.len(),
        dag.spawn_count(),
        dag.total_work() as f64 / 1e6,
        dag.span() as f64 / 1e6,
    );

    let threads = [1usize, 2, 4, 8, 16, 32, 64, 128, 192, 256];
    let flavors = [
        SimFlavor::NowaCl,
        SimFlavor::FibrilLock,
        SimFlavor::ChildStealTbb,
    ];

    let mut results = Vec::new();
    for &p in &threads {
        let row: Vec<f64> = flavors
            .iter()
            .map(|&f| simulate(&dag, SimConfig::new(f, p)).speedup())
            .collect();
        results.push(row);
    }
    let max = results
        .iter()
        .flat_map(|r| r.iter().copied())
        .fold(0.0f64, f64::max);

    println!(
        "{:>7}  {:>8}  {:>8}  {:>8}",
        "threads", "nowa", "fibril", "tbb"
    );
    for (i, &p) in threads.iter().enumerate() {
        println!(
            "{:>7}  {:>8.2}  {:>8.2}  {:>8.2}   nowa {}",
            p,
            results[i][0],
            results[i][1],
            results[i][2],
            bar(results[i][0], max, 40)
        );
    }
    let last = results.last().expect("non-empty");
    println!(
        "\nat 256 workers the wait-free protocol delivers {:.2}x the\n\
         lock-based protocol's speedup (paper: up to 1.64x on fine-grained kernels)",
        last[0] / last[1]
    );
}
