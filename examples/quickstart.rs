//! Quickstart: spawn/sync with `join2`, parallel loops, runtime stats.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nowa::{join2, par_for, Config, Runtime};
use std::sync::atomic::{AtomicU64, Ordering};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // `fib(n-1)` is spawned: it runs right away on this worker while the
    // *continuation* (running fib(n-2) and adding) may be stolen.
    let (a, b) = join2(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let rt = Runtime::new(Config::with_workers(workers)).expect("runtime");
    println!(
        "runtime: {} workers, flavor {}",
        rt.workers(),
        rt.flavor().name()
    );

    // Recursive fork/join.
    let n = 30;
    let result = rt.run(|| fib(n));
    println!("fib({n}) = {result}");

    // Serial elision: the same function outside the runtime runs serially.
    assert_eq!(fib(20), 6765);
    println!("serial elision works: fib(20) = 6765");

    // Parallel loop with an atomic reduction.
    let hits = AtomicU64::new(0);
    rt.run(|| {
        par_for(0..1_000_000, 4096, &|i| {
            // Count numbers whose bit-parity is even.
            if (i as u64).count_ones().is_multiple_of(2) {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        })
    });
    println!("even-parity numbers below 1e6: {}", hits.into_inner());

    // Scheduler statistics: spawns, steals, fast-path pops...
    let stats = rt.stats();
    println!(
        "stats: {} spawns, {} fast pops, {} steals, {} joins, {} suspensions",
        stats.spawns, stats.fast_pops, stats.steals, stats.joins, stats.suspensions
    );
}
