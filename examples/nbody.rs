//! Direct-summation N-body timestepping with `par_map`-style row
//! parallelism: every step computes all pairwise gravitational
//! accelerations in parallel, then integrates.
//!
//! ```text
//! cargo run --release --example nbody
//! ```

use nowa::{par_for, Config, Runtime};

#[derive(Clone, Copy, Default)]
struct Body {
    pos: [f64; 3],
    vel: [f64; 3],
    mass: f64,
}

fn make_bodies(n: usize) -> Vec<Body> {
    let mut seed = 42u64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 2000) as f64 / 1000.0 - 1.0
    };
    (0..n)
        .map(|_| Body {
            pos: [rand(), rand(), rand()],
            vel: [rand() * 0.1, rand() * 0.1, rand() * 0.1],
            mass: 1.0 + rand().abs(),
        })
        .collect()
}

fn energy(bodies: &[Body]) -> f64 {
    let mut e = 0.0;
    for (i, a) in bodies.iter().enumerate() {
        e += 0.5 * a.mass * a.vel.iter().map(|v| v * v).sum::<f64>();
        for b in &bodies[i + 1..] {
            let d2: f64 = a
                .pos
                .iter()
                .zip(&b.pos)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                + 1e-6;
            e -= a.mass * b.mass / d2.sqrt();
        }
    }
    e
}

fn step(bodies: &mut [Body], accel: &mut [[f64; 3]], dt: f64) {
    let snapshot: Vec<Body> = bodies.to_vec();
    // Parallel force computation: each index writes only its own slot.
    {
        let accel_ptr = accel.as_mut_ptr() as usize;
        par_for(0..snapshot.len(), 16, &|i| {
            let mut acc = [0.0f64; 3];
            let me = snapshot[i];
            for (j, other) in snapshot.iter().enumerate() {
                if i == j {
                    continue;
                }
                let mut d = [0.0; 3];
                let mut d2 = 1e-6;
                for (dk, (p, q)) in d.iter_mut().zip(other.pos.iter().zip(&me.pos)) {
                    *dk = p - q;
                    d2 += *dk * *dk;
                }
                let f = other.mass / (d2 * d2.sqrt());
                for (ak, dk) in acc.iter_mut().zip(&d) {
                    *ak += f * dk;
                }
            }
            // SAFETY: index-exclusive write into the accel buffer.
            unsafe { *(accel_ptr as *mut [f64; 3]).add(i) = acc };
        });
    }
    // Serial integration (O(n), not worth forking).
    for (b, a) in bodies.iter_mut().zip(accel.iter()) {
        for (vk, (pk, ak)) in b.vel.iter_mut().zip(b.pos.iter_mut().zip(a)) {
            *vk += ak * dt;
            *pk += *vk * dt;
        }
    }
}

fn main() {
    let n = 800;
    let steps = 20;
    let mut bodies = make_bodies(n);
    let mut accel = vec![[0.0f64; 3]; n];

    let rt = Runtime::new(Config::default()).expect("runtime");
    let e0 = energy(&bodies);
    let start = std::time::Instant::now();
    rt.run(|| {
        for _ in 0..steps {
            step(&mut bodies, &mut accel, 1e-4);
        }
    });
    let dt = start.elapsed();
    let e1 = energy(&bodies);

    println!("{n} bodies, {steps} steps in {dt:?}");
    println!("energy drift: {:+.3e} (relative)", (e1 - e0) / e0.abs());
    let stats = rt.stats();
    println!("spawns: {}, steals: {}", stats.spawns, stats.steals);
}
