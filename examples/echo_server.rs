//! An async echo server over local socket pairs, demonstrating the §6h
//! serving surface end to end: `AsyncFd` readiness futures on the epoll
//! reactor, one `Region::spawn_async` handler per connection, and — the
//! part worth copying — **graceful shutdown**: `Runtime::shutdown` latches
//! the root cancellation scope, the broadcast wakes every handler parked
//! on I/O, and each unwinds with a typed `Cancelled` payload instead of
//! being killed mid-write.
//!
//! ```text
//! cargo run --release --example echo_server
//! ```

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::pin;
use std::time::Duration;

use nowa::runtime::Cancelled;
use nowa::{AsyncFd, Config, Region, Runtime};

/// One connection's echo loop: read whatever arrives, write it back.
/// Returns the bytes echoed once the peer hangs up. The fd must already be
/// non-blocking — `AsyncFd` only reports readiness; the standard
/// level-triggered loop (syscall, `WouldBlock` → await, retry) is ours.
async fn echo(stream: UnixStream) -> std::io::Result<u64> {
    let fd = AsyncFd::new(stream)?;
    let mut total = 0u64;
    let mut buf = [0u8; 4096];
    loop {
        let n = loop {
            match (&mut fd.get_ref()).read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => fd.readable().await?,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            return Ok(total); // peer hung up: a clean exit
        }
        let mut sent = 0;
        while sent < n {
            match (&mut fd.get_ref()).write(&buf[sent..n]) {
                Ok(m) => sent += m,
                Err(e) if e.kind() == ErrorKind::WouldBlock => fd.writable().await?,
                Err(e) => return Err(e),
            }
        }
        total += n as u64;
    }
}

fn main() {
    // The shutdown unwind is *expected* here: silence the default panic
    // hook for typed `Cancelled` payloads so the demo output stays clean.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<Cancelled>().is_none() {
            default_hook(info);
        }
    }));

    let rt = Runtime::new(Config::with_workers(2)).expect("runtime");

    // Two connections: client A is polite and hangs up; client B would
    // chat forever, so only a shutdown can end its handler.
    let (srv_a, mut client_a) = UnixStream::pair().expect("socketpair");
    let (srv_b, mut client_b) = UnixStream::pair().expect("socketpair");
    for s in [&srv_a, &srv_b] {
        s.set_nonblocking(true).expect("non-blocking server end");
    }

    std::thread::scope(|s| {
        // The server: one root task, one async handler per connection,
        // joined through the region so a handler panic cannot leak.
        let server = s.spawn(|| {
            catch_unwind(AssertUnwindSafe(|| {
                rt.run(|| {
                    let region = pin!(Region::cancellable());
                    let region = region.as_ref();
                    let a = region.spawn_async(echo(srv_a));
                    let b = region.spawn_async(echo(srv_b));
                    region.block_on(async { (a.await, b.await) })
                })
            }))
        });

        // Client A: send, verify the echo, hang up cleanly.
        client_a.write_all(b"hello, nowa").expect("client a write");
        let mut back = [0u8; 11];
        client_a.read_exact(&mut back).expect("client a echo");
        assert_eq!(&back, b"hello, nowa");
        println!("client a: echo verified, hanging up");
        let _ = client_a.shutdown(std::net::Shutdown::Write);

        // Client B: send, verify, then linger — its handler parks on
        // `readable()` with nothing left to read.
        client_b.write_all(b"lingering").expect("client b write");
        let mut back = [0u8; 9];
        client_b.read_exact(&mut back).expect("client b echo");
        assert_eq!(&back, b"lingering");
        println!("client b: echo verified, lingering");
        std::thread::sleep(Duration::from_millis(50));

        // Graceful shutdown: the cancellation broadcast wakes B's parked
        // handler, which unwinds with a typed payload; the runtime drains
        // and joins every thread within the bound.
        rt.shutdown(Duration::from_secs(5)).expect("clean shutdown");

        match server.join().expect("server thread") {
            Ok(out) => println!("server drained before the shutdown: {out:?}"),
            Err(payload) => {
                let cancelled = payload
                    .downcast_ref::<Cancelled>()
                    .expect("shutdown unwinds with a typed Cancelled payload");
                println!("server unwound gracefully: {cancelled}");
            }
        }
    });
}
