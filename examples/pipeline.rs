//! A three-stage parallel pipeline built from nested fork/join: chunks of
//! a data stream are (1) parsed, (2) transformed and (3) aggregated, with
//! stages expressed as `join2` trees rather than channels — the
//! fully-strict style the platform is built for. Also demonstrates the
//! `Region` API's linear-spawn shape and panic propagation.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use nowa::{join2, map_reduce, Config, Region, Runtime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stage 1: "parse" a chunk of the raw stream into numbers.
fn parse(chunk: &[u8]) -> Vec<u32> {
    chunk.iter().map(|&b| b as u32 * 131).collect()
}

/// Stage 2: transform (here: a toy hash round).
fn transform(mut values: Vec<u32>) -> Vec<u32> {
    for v in &mut values {
        *v ^= *v >> 7;
        *v = v.wrapping_mul(0x9E37_79B9);
        *v ^= *v >> 13;
    }
    values
}

/// Stage 3: aggregate.
fn aggregate(values: &[u32]) -> u64 {
    values.iter().map(|&v| v as u64).sum()
}

fn main() {
    // A deterministic "stream" of bytes, chunked.
    let stream: Vec<u8> = (0..1_000_000u32).map(|i| (i * 31 % 251) as u8).collect();
    let chunks: Vec<&[u8]> = stream.chunks(4096).collect();

    let rt = Runtime::new(Config::default()).expect("runtime");

    // The whole pipeline as one map_reduce: each chunk flows through the
    // three stages; chunk processing fans out as a balanced join tree.
    let total = rt.run(|| {
        map_reduce(
            0..chunks.len(),
            4,
            &|i| {
                // Stages 1+2 of one chunk can themselves overlap with
                // the neighbour chunk via the enclosing join tree; the
                // inner join2 splits parse from a checksum side-task.
                let (parsed, check) = join2(
                    || transform(parse(chunks[i])),
                    || chunks[i].iter().map(|&b| b as u64).sum::<u64>(),
                );
                aggregate(&parsed) ^ check
            },
            &|a, b| a.wrapping_add(b),
        )
        .unwrap_or(0)
    });
    println!("pipeline digest: {total:#x} over {} chunks", chunks.len());

    // The same computation through the Region API (linear spawns, one
    // frame — the paper's Fig. 4 anatomy).
    let digest = AtomicU64::new(0);
    rt.run(|| {
        let region = Region::new();
        let digest = &digest;
        for chunk in &chunks {
            // SAFETY: everything live across the spawns (the region, the
            // chunk slices, the atomic) is Send/Sync, and the region syncs
            // before any of it dies. `move` captures the chunk reference by
            // value — a stolen continuation advances the loop variable
            // concurrently with the child.
            unsafe {
                region.spawn(move || {
                    let out = aggregate(&transform(parse(chunk)));
                    digest.fetch_xor(out, Ordering::Relaxed);
                });
            }
        }
        region.sync();
    });
    println!("region digest:   {:#x}", digest.into_inner());

    // Panic propagation: a failing stage surfaces at the caller.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|| {
            let (_, _) = join2(|| panic!("stage exploded"), || 1 + 1);
        })
    }));
    println!("failing stage propagated: {}", result.is_err());
}
