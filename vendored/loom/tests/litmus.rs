//! Litmus tests for the vendored model checker itself.
//!
//! Each classic weak-memory shape appears twice: a correctly-fenced variant
//! that must pass, and a deliberately-broken variant that must fail — the
//! latter proves the checker actually explores the reorderings the former
//! claims to rule out. These run under plain `cargo test` (the `loom` crate
//! itself needs no `--cfg loom`; that gate belongs to its consumers).

use loom::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use loom::sync::Arc;

/// Message passing with release/acquire: the reader that sees the flag must
/// see the data.
#[test]
fn mp_release_acquire_passes() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            loom::thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

/// The same shape with a relaxed flag must be caught: some execution reads
/// the flag as set but the data as stale.
#[test]
#[should_panic]
fn mp_relaxed_flag_fails() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            loom::thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed);
            })
        };
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

/// Release/acquire *fences* carry the same edge as release/acquire accesses.
#[test]
fn mp_fences_pass() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            loom::thread::spawn(move || {
                data.store(7, Ordering::Relaxed);
                fence(Ordering::Release);
                flag.store(1, Ordering::Relaxed);
            })
        };
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 7);
        }
        t.join().unwrap();
    });
}

/// Store buffering: with `SeqCst` on every access, both threads reading 0 is
/// forbidden.
#[test]
fn sb_seqcst_passes() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            loom::thread::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        y.store(1, Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        let r1 = t.join().unwrap();
        assert!(
            r1 == 1 || r2 == 1,
            "store buffering: both threads read 0 under SeqCst"
        );
    });
}

/// Store buffering under release/acquire alone IS allowed — the checker must
/// find the both-read-0 execution.
#[test]
#[should_panic(expected = "store buffering")]
fn sb_acqrel_fails() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            loom::thread::spawn(move || {
                x.store(1, Ordering::Release);
                y.load(Ordering::Acquire)
            })
        };
        y.store(1, Ordering::Release);
        let r2 = x.load(Ordering::Acquire);
        let r1 = t.join().unwrap();
        assert!(
            r1 == 1 || r2 == 1,
            "store buffering: both threads read 0 under SeqCst"
        );
    });
}

/// RMWs are atomic: two concurrent increments never lose an update.
#[test]
fn rmw_atomicity() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// CAS loops converge and exactly one claimant wins each value.
#[test]
fn cas_exactly_one_winner() {
    loom::model(|| {
        let claim = Arc::new(AtomicU32::new(0));
        let wins = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let (claim, wins) = (Arc::clone(&claim), Arc::clone(&wins));
                loom::thread::spawn(move || {
                    if claim
                        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    });
}

/// A spin loop with `yield_now` converges: bounded staleness forces the
/// spinner to eventually observe the store.
#[test]
fn spin_loop_converges() {
    loom::model(|| {
        let flag = Arc::new(AtomicU32::new(0));
        let t = {
            let flag = Arc::clone(&flag);
            loom::thread::spawn(move || {
                flag.store(1, Ordering::Release);
            })
        };
        while flag.load(Ordering::Acquire) == 0 {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
}

/// An untimed futex wait with no waker is reported as a deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn futex_lost_wakeup_is_deadlock() {
    loom::model(|| {
        let word = Arc::new(AtomicU32::new(0));
        loom::futex::futex_wait(&word, 0, false);
    });
}

/// The futex wait/wake handshake works: value change or wake, never a hang.
#[test]
fn futex_handshake() {
    use loom::futex::FutexResult;
    loom::model(|| {
        let word = Arc::new(AtomicU32::new(0));
        let t = {
            let word = Arc::clone(&word);
            loom::thread::spawn(move || {
                word.store(1, Ordering::Release);
                loom::futex::futex_wake(&word, 1);
            })
        };
        let r = loom::futex::futex_wait(&word, 0, false);
        assert!(matches!(r, FutexResult::Woken | FutexResult::NotExpected));
        assert_eq!(word.load(Ordering::Acquire), 1);
        t.join().unwrap();
    });
}

/// A *timed* futex wait may time out instead of deadlocking — the model
/// fires timeouts at quiescence.
#[test]
fn timed_futex_wait_times_out() {
    use loom::futex::FutexResult;
    loom::model(|| {
        let word = Arc::new(AtomicU32::new(0));
        let r = loom::futex::futex_wait(&word, 0, true);
        assert_eq!(r, FutexResult::TimedOut);
    });
}

/// Spawn establishes happens-before: the child sees everything the spawner
/// did, join establishes the reverse edge.
#[test]
fn spawn_join_happens_before() {
    loom::model(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        a.store(5, Ordering::Relaxed);
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            loom::thread::spawn(move || {
                assert_eq!(a.load(Ordering::Relaxed), 5);
                b.store(6, Ordering::Relaxed);
            })
        };
        t.join().unwrap();
        assert_eq!(b.load(Ordering::Relaxed), 6);
    });
}

/// Three threads exercise the preemption bound without exploding: a sanity
/// check that exploration terminates on a non-trivial model.
#[test]
fn three_thread_counter() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
}
