//! Model threads.
//!
//! Model threads are real OS threads, but the controller lets exactly one
//! run at a time (see the `rt` module). Spawning establishes the usual
//! happens-before edge from the spawner to the child; joining establishes
//! it from the child's last operation to the joiner.

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a spawned model thread. Mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes, returning its
    /// value. Always `Ok` — a panicking model thread fails the whole
    /// execution instead of surfacing here.
    pub fn join(self) -> std::thread::Result<T> {
        rt::with_current(|ctl, me| ctl.join_thread(me, self.tid));
        Ok(self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined model thread stored its result"))
    }
}

/// Spawns a model thread. Panics if the model exceeds
/// [`crate::MAX_THREADS`] threads.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::with_current(|ctl, _me| {
        ctl.spawn_model_thread(move || {
            let value = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
        })
    });
    JoinHandle { tid, result }
}

/// Yields the model scheduler: this thread becomes unschedulable until no
/// other thread can run (or a store is performed, which re-arms spinners).
/// Spin loops must call this (or [`crate::hint::spin_loop`]) or the
/// step-bound detector will flag them.
pub fn yield_now() {
    rt::with_current(|ctl, me| ctl.yield_now(me));
}
