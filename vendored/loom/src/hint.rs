//! Spin-loop hints under the model checker.

/// Models `core::hint::spin_loop` as a scheduler yield: a spinning thread
/// must let other threads run for its condition to ever change, and the
/// runtime's livelock detector needs to see the spin as such.
pub fn spin_loop() {
    crate::thread::yield_now();
}
