//! The model-checking runtime: bounded DFS over thread interleavings with a
//! vector-clock weak-memory model.
//!
//! # How an exploration works
//!
//! [`crate::model`] runs the user closure many times. Each run (an
//! *execution*) is driven by a `path`: a list of recorded choice points
//! (which thread runs the next visible operation; which store a load reads
//! from). The first execution always picks option 0 everywhere and records
//! the number of options it saw; after the run completes, the path is
//! advanced like an odometer (last choice point with unexplored options is
//! incremented, everything after it is discarded) and the closure runs
//! again, replaying the prefix deterministically. When the path cannot be
//! advanced, the space is exhausted.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but exactly one runs at a time: a
//! baton is passed through a mutex + condvar. Every *visible operation*
//! (atomic access, fence, futex call, spawn/join, yield) is a schedule
//! point: the running thread picks — via the path — which thread performs
//! the next operation. Switching away from a thread that could have
//! continued costs one *preemption*; the search is bounded by
//! `max_preemptions` (loom's classic bound: most bugs reproduce with 2).
//!
//! # Memory model (approximation)
//!
//! Per atomic location the checker keeps the *modification order* — the
//! list of all stores, in execution order. A load may read any store that
//! is not superseded for the loading thread: it must not be older than the
//! newest store the thread has already observed (per-location coherence),
//! and not older than any store that happens-before the load. Each store
//! carries the release clock of its writer (empty for `Relaxed` stores
//! without a preceding release fence); acquire loads join it into the
//! reader's clock, which is how `Release`/`Acquire` edges arise. RMWs
//! always read the latest store and carry the read store's release clock
//! forward (release sequences). `SeqCst` operations additionally
//! synchronise both ways with a global SC clock — a *conservative*
//! approximation of the C11 total order `S`: it reliably rules out the
//! store-buffering shapes `SeqCst` exists to forbid (and therefore makes
//! downgraded-`SeqCst` canaries fail), but it is stronger than C11 in
//! exotic corners (e.g. IRIW), so "model passes" must be read as "no bug
//! found at this bound", not as a proof.
//!
//! Two deliberate simplifications keep bounded spin loops convergent:
//! a load that has read a stale (non-latest) value from the same location
//! twice in a row is forced to read the latest store (bounded staleness —
//! models store-buffer drain), and `compare_exchange_weak` never fails
//! spuriously.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub use core::sync::atomic::Ordering;

/// Maximum number of model threads per execution (including the root).
pub const MAX_THREADS: usize = 8;

/// Consecutive stale reads of one location before a load is forced to see
/// the latest store (bounded staleness; see the module docs).
const STALE_MAX: u8 = 2;

/// Full yield cycles (every live thread yielded) without a store before the
/// execution is declared livelocked.
const YIELD_LIMIT: u32 = 32;

/// Marker payload used to unwind model threads after the execution has been
/// poisoned (first panic / deadlock / livelock wins; these unwinds are
/// ignored).
pub(crate) struct PoisonExit;

/// Monotonically increasing execution generation, used by lazily-registered
/// atomics to detect "first touch in this execution".
static GENERATION: StdAtomicU64 = StdAtomicU64::new(0);

pub(crate) fn next_generation() -> u64 {
    GENERATION.fetch_add(1, StdOrdering::Relaxed) + 1
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A fixed-width vector clock over model threads.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    #[inline]
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    #[inline]
    fn get(&self, t: usize) -> u32 {
        self.0[t]
    }

    #[inline]
    fn tick(&mut self, t: usize) {
        self.0[t] += 1;
    }
}

// ---------------------------------------------------------------------------
// Locations and stores
// ---------------------------------------------------------------------------

/// One store in a location's modification order.
struct StoreEvent {
    value: u64,
    /// Thread that performed the store and its clock component at the time,
    /// for happens-before tests (`store hb T ⇔ T.clock[writer] ≥ writer_clock`).
    writer: usize,
    writer_clock: u32,
    /// Release clock acquired by acquire-loads that read this store.
    sync: VClock,
}

struct Location {
    stores: Vec<StoreEvent>,
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Run {
    Ready,
    /// Yielded threads are only schedulable when no `Ready` thread exists.
    Yielded,
    BlockedFutex {
        loc: u32,
        timed: bool,
    },
    BlockedJoin {
        target: usize,
    },
    Finished,
}

/// Outcome of a modeled futex wait.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FutexResult {
    /// The word did not hold the expected value; the wait returned at once.
    NotExpected,
    /// Woken by a modeled `futex_wake`.
    Woken,
    /// The (timed) wait "timed out": the model fires timeouts only when no
    /// thread is runnable, which both keeps executions finite and surfaces
    /// lost wakeups that a timeout would otherwise mask as latency.
    TimedOut,
}

struct ThreadState {
    run: Run,
    clock: VClock,
    /// Release clocks of stores read by relaxed loads, released into the
    /// thread clock by the next acquire fence.
    acq_pending: VClock,
    /// Thread clock as of the last release fence (applies to later relaxed
    /// stores).
    rel_fence: Option<VClock>,
    /// Per-location index of the newest store this thread has observed.
    coherence: Vec<u32>,
    /// Per-location consecutive stale-read counter.
    stale: Vec<u8>,
    /// Clock of the futex waker, joined when the wait returns.
    wake_sync: Option<VClock>,
    futex_result: FutexResult,
    /// Clock snapshot published at thread finish (joined by joiners).
    finish_clock: VClock,
}

impl ThreadState {
    fn new(clock: VClock) -> ThreadState {
        ThreadState {
            run: Run::Ready,
            clock,
            acq_pending: VClock::default(),
            rel_fence: None,
            coherence: Vec::new(),
            stale: Vec::new(),
            wake_sync: None,
            futex_result: FutexResult::NotExpected,
            finish_clock: VClock::default(),
        }
    }

    fn coherence_at(&mut self, loc: u32) -> u32 {
        let loc = loc as usize;
        if self.coherence.len() <= loc {
            self.coherence.resize(loc + 1, 0);
            self.stale.resize(loc + 1, 0);
        }
        self.coherence[loc]
    }
}

// ---------------------------------------------------------------------------
// Path / choices
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    chosen: u32,
    options: u32,
}

/// Advances the DFS path odometer-style. Returns `false` when the space is
/// exhausted.
pub(crate) fn advance_path(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    /// The current thread is about to perform a visible operation and could
    /// continue — switching away costs a preemption.
    Op,
    /// The current thread volunteered to stop (yield / block / finish) —
    /// switching away is free.
    Release,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

pub(crate) struct Execution {
    threads: Vec<ThreadState>,
    locations: Vec<Location>,
    sc_clock: VClock,
    /// Thread holding the baton; `usize::MAX` once the execution completed.
    current: usize,
    path: Vec<Choice>,
    path_pos: usize,
    preemptions_left: u32,
    steps: u64,
    max_steps: u64,
    yield_cycles: u32,
    /// First harness-detected failure (deadlock, livelock, step bound).
    pub(crate) poison: Option<String>,
    /// First user panic payload (assertion failures in the model).
    pub(crate) panic_payload: Option<Box<dyn Any + Send>>,
    /// Number of threads not yet finished.
    pub(crate) active: usize,
}

impl Execution {
    fn new(path: Vec<Choice>, max_preemptions: u32, max_steps: u64) -> Execution {
        Execution {
            threads: vec![ThreadState::new({
                let mut c = VClock::default();
                c.tick(0);
                c
            })],
            locations: Vec::new(),
            sc_clock: VClock::default(),
            current: 0,
            path,
            path_pos: 0,
            preemptions_left: max_preemptions,
            steps: 0,
            max_steps,
            yield_cycles: 0,
            poison: None,
            panic_payload: None,
            active: 1,
        }
    }

    fn poison_with(&mut self, reason: String) {
        if self.poison.is_none() && self.panic_payload.is_none() {
            self.poison = Some(reason);
        }
    }

    fn choose(&mut self, options: u32) -> u32 {
        debug_assert!(options >= 1);
        if options == 1 {
            return 0;
        }
        let pos = self.path_pos;
        self.path_pos += 1;
        if pos < self.path.len() {
            if self.path[pos].options != options {
                self.poison_with(format!(
                    "loom: nondeterministic execution (replay saw {} options, recorded {}) — \
                     model closures must be deterministic",
                    options, self.path[pos].options
                ));
                return 0;
            }
            self.path[pos].chosen
        } else {
            self.path.push(Choice { chosen: 0, options });
            0
        }
    }

    /// Picks the thread that performs the next visible operation and hands
    /// it the baton. Handles yield promotion, futex timeouts, deadlock and
    /// livelock detection.
    fn sched(&mut self, me: usize, kind: Kind) {
        self.steps += 1;
        if self.steps > self.max_steps {
            self.poison_with(format!(
                "loom: exceeded {} steps in one execution (unbounded loop in the model?)",
                self.max_steps
            ));
            return;
        }
        let mut ready: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t].run == Run::Ready)
            .collect();
        if ready.is_empty() {
            // Promote yielded threads: they are schedulable once nothing
            // else can run.
            let mut promoted = false;
            for t in 0..self.threads.len() {
                if self.threads[t].run == Run::Yielded {
                    self.threads[t].run = Run::Ready;
                    ready.push(t);
                    promoted = true;
                }
            }
            if promoted {
                self.yield_cycles += 1;
                if self.yield_cycles > YIELD_LIMIT {
                    self.poison_with(
                        "loom: livelock — every live thread is spinning without progress"
                            .to_string(),
                    );
                    return;
                }
            }
        }
        if ready.is_empty() {
            // Fire timeouts of timed futex waits, but only at quiescence:
            // this models "the timeout eventually fires" without exploding
            // the schedule space, and lets untimed waits surface lost
            // wakeups as deadlocks.
            for t in 0..self.threads.len() {
                if let Run::BlockedFutex { timed: true, .. } = self.threads[t].run {
                    self.threads[t].run = Run::Ready;
                    self.threads[t].futex_result = FutexResult::TimedOut;
                    self.threads[t].wake_sync = None;
                    ready.push(t);
                }
            }
        }
        if ready.is_empty() {
            if self.active > 0 {
                let blocked: Vec<usize> = (0..self.threads.len())
                    .filter(|&t| {
                        matches!(
                            self.threads[t].run,
                            Run::BlockedFutex { .. } | Run::BlockedJoin { .. }
                        )
                    })
                    .collect();
                self.poison_with(format!(
                    "loom: deadlock — {} thread(s) {:?} blocked with no runnable thread \
                     (lost wakeup?)",
                    blocked.len(),
                    blocked
                ));
                return;
            }
            // All threads finished: execution complete.
            self.current = usize::MAX;
            return;
        }
        ready.sort_unstable();
        let me_ready = kind == Kind::Op && ready.contains(&me);
        let chosen = if me_ready {
            // `me` first, so option 0 = "continue without preempting".
            let mut options = vec![me];
            if self.preemptions_left > 0 {
                options.extend(ready.iter().copied().filter(|&t| t != me));
            }
            let idx = self.choose(options.len() as u32) as usize;
            if idx > 0 {
                self.preemptions_left -= 1;
            }
            options[idx]
        } else {
            let idx = self.choose(ready.len() as u32) as usize;
            ready[idx]
        };
        self.current = chosen;
    }

    // -- memory model -----------------------------------------------------

    pub(crate) fn register_location(&mut self, me: usize, init: u64) -> u32 {
        let id = self.locations.len() as u32;
        let writer_clock = self.threads[me].clock.get(me);
        self.locations.push(Location {
            stores: vec![StoreEvent {
                value: init,
                writer: me,
                writer_clock,
                sync: VClock::default(),
            }],
        });
        id
    }

    fn tick(&mut self, me: usize) {
        self.threads[me].clock.tick(me);
    }

    fn sc_pre(&mut self, me: usize, ord: Ordering) {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock;
            self.threads[me].clock.join(&sc);
        }
    }

    fn sc_post(&mut self, me: usize, ord: Ordering) {
        if ord == Ordering::SeqCst {
            let clock = self.threads[me].clock;
            self.sc_clock.join(&clock);
        }
    }

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// The clock a store publishes for acquire-readers.
    fn store_sync(&self, me: usize, ord: Ordering) -> VClock {
        if Self::is_release(ord) {
            self.threads[me].clock
        } else {
            self.threads[me].rel_fence.unwrap_or_default()
        }
    }

    /// A store on `loc` wakes spinners: any yielded thread may have been
    /// waiting for exactly this value change.
    fn note_progress(&mut self) {
        self.yield_cycles = 0;
        for t in self.threads.iter_mut() {
            if t.run == Run::Yielded {
                t.run = Run::Ready;
            }
        }
    }

    pub(crate) fn load(&mut self, me: usize, loc: u32, ord: Ordering) -> u64 {
        self.tick(me);
        self.sc_pre(me, ord);
        let mut floor = self.threads[me].coherence_at(loc);
        let len = {
            let stores = &self.locations[loc as usize].stores;
            // Write-read coherence: the load cannot see anything older than
            // a store that happens-before it.
            for (j, s) in stores.iter().enumerate().skip(floor as usize + 1) {
                if self.threads[me].clock.get(s.writer) >= s.writer_clock {
                    floor = j as u32;
                }
            }
            stores.len() as u32
        };
        let idx = if self.threads[me].stale[loc as usize] >= STALE_MAX {
            len - 1
        } else {
            // Choice 0 = the newest store, so the first-explored execution
            // behaves sequentially consistently.
            len - 1 - self.choose(len - floor)
        };
        {
            let st = &mut self.threads[me];
            st.stale[loc as usize] = if idx + 1 < len {
                st.stale[loc as usize] + 1
            } else {
                0
            };
            st.coherence[loc as usize] = idx;
        }
        let store = &self.locations[loc as usize].stores[idx as usize];
        let (value, sync) = (store.value, store.sync);
        self.threads[me].acq_pending.join(&sync);
        if Self::is_acquire(ord) {
            self.threads[me].clock.join(&sync);
        }
        self.sc_post(me, ord);
        value
    }

    pub(crate) fn store(&mut self, me: usize, loc: u32, value: u64, ord: Ordering) {
        self.tick(me);
        self.sc_pre(me, ord);
        let _ = self.threads[me].coherence_at(loc);
        let sync = self.store_sync(me, ord);
        let writer_clock = self.threads[me].clock.get(me);
        let stores = &mut self.locations[loc as usize].stores;
        stores.push(StoreEvent {
            value,
            writer: me,
            writer_clock,
            sync,
        });
        let last = (stores.len() - 1) as u32;
        self.threads[me].coherence[loc as usize] = last;
        self.threads[me].stale[loc as usize] = 0;
        self.sc_post(me, ord);
        self.note_progress();
    }

    /// Read-modify-write. Always reads the latest store (RMW atomicity) and
    /// carries the read store's release clock into the new store (release
    /// sequences). Returns the previous value; stores only when `f` returns
    /// `Some` (failed CAS = load-only with `fail_ord` effects).
    pub(crate) fn rmw(
        &mut self,
        me: usize,
        loc: u32,
        ord: Ordering,
        fail_ord: Ordering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        self.tick(me);
        self.sc_pre(me, ord);
        let _ = self.threads[me].coherence_at(loc);
        let (old, read_sync, last_idx) = {
            let stores = &self.locations[loc as usize].stores;
            let s = stores.last().expect("location has an initial store");
            (s.value, s.sync, (stores.len() - 1) as u32)
        };
        match f(old) {
            Some(new) => {
                self.threads[me].acq_pending.join(&read_sync);
                if Self::is_acquire(ord) {
                    self.threads[me].clock.join(&read_sync);
                }
                let mut sync = self.store_sync(me, ord);
                sync.join(&read_sync); // release-sequence continuation
                let writer_clock = self.threads[me].clock.get(me);
                let stores = &mut self.locations[loc as usize].stores;
                stores.push(StoreEvent {
                    value: new,
                    writer: me,
                    writer_clock,
                    sync,
                });
                let last = (stores.len() - 1) as u32;
                self.threads[me].coherence[loc as usize] = last;
                self.threads[me].stale[loc as usize] = 0;
                self.sc_post(me, ord);
                self.note_progress();
            }
            None => {
                self.threads[me].acq_pending.join(&read_sync);
                if Self::is_acquire(fail_ord) {
                    self.threads[me].clock.join(&read_sync);
                }
                self.threads[me].coherence[loc as usize] = last_idx;
                self.threads[me].stale[loc as usize] = 0;
                self.sc_post(me, fail_ord);
            }
        }
        old
    }

    pub(crate) fn fence(&mut self, me: usize, ord: Ordering) {
        self.tick(me);
        if Self::is_acquire(ord) {
            let pending = self.threads[me].acq_pending;
            self.threads[me].clock.join(&pending);
        }
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock;
            self.threads[me].clock.join(&sc);
        }
        if Self::is_release(ord) {
            self.threads[me].rel_fence = Some(self.threads[me].clock);
        }
        if ord == Ordering::SeqCst {
            let clock = self.threads[me].clock;
            self.sc_clock.join(&clock);
        }
    }

    /// The value a futex syscall would compare against: the latest store
    /// (the kernel reads the physical memory location coherently). The read
    /// advances the thread's coherence floor — per-location coherence is
    /// global on real hardware, so later loads cannot travel back past it.
    fn futex_value(&mut self, me: usize, loc: u32) -> u64 {
        let _ = self.threads[me].coherence_at(loc);
        let stores = &self.locations[loc as usize].stores;
        let last = (stores.len() - 1) as u32;
        let value = stores.last().expect("location has an initial store").value;
        self.threads[me].coherence[loc as usize] = last;
        self.threads[me].stale[loc as usize] = 0;
        value
    }
}

// ---------------------------------------------------------------------------
// Controller: baton passing between OS threads
// ---------------------------------------------------------------------------

pub(crate) struct Controller {
    pub(crate) mu: Mutex<Execution>,
    pub(crate) cv: Condvar,
    pub(crate) generation: u64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Controller>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Controller>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let (ctl, me) = borrow
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        f(ctl, *me)
    })
}

pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Controller {
    fn new(path: Vec<Choice>, max_preemptions: u32, max_steps: u64) -> Controller {
        Controller {
            mu: Mutex::new(Execution::new(path, max_preemptions, max_steps)),
            cv: Condvar::new(),
            generation: next_generation(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Execution> {
        self.mu.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until `me` holds the baton; panics with [`PoisonExit`] when the
    /// execution has been poisoned in the meantime.
    fn wait_turn<'a>(
        &self,
        mut g: MutexGuard<'a, Execution>,
        me: usize,
    ) -> MutexGuard<'a, Execution> {
        loop {
            if g.poison.is_some() || g.panic_payload.is_some() {
                drop(g);
                self.cv.notify_all();
                panic::panic_any(PoisonExit);
            }
            if g.current == me {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn sched_and_wait<'a>(
        &self,
        mut g: MutexGuard<'a, Execution>,
        me: usize,
        kind: Kind,
    ) -> MutexGuard<'a, Execution> {
        g.sched(me, kind);
        if g.current != me {
            self.cv.notify_all();
        }
        self.wait_turn(g, me)
    }

    /// A visible operation: schedule point, then `f` runs with the baton.
    pub(crate) fn visible_op<R>(&self, me: usize, f: impl FnOnce(&mut Execution, usize) -> R) -> R {
        let g = self.lock();
        let mut g = self.sched_and_wait(g, me, Kind::Op);
        f(&mut g, me)
    }

    /// Registers (or refreshes, on a new execution) a lazily-created atomic
    /// location. Must be called with the baton held inside a visible op.
    pub(crate) fn ensure_location(
        &self,
        ex: &mut Execution,
        me: usize,
        slot: &core::cell::UnsafeCell<crate::sync::atomic::Slot>,
        init: u64,
    ) -> u32 {
        // SAFETY: the baton guarantees exactly one model thread executes at
        // a time, and `slot` is only touched under the controller lock.
        let s = unsafe { &mut *slot.get() };
        if s.generation != self.generation {
            s.generation = self.generation;
            s.loc = ex.register_location(me, init);
        }
        s.loc
    }

    pub(crate) fn yield_now(&self, me: usize) {
        let mut g = self.lock();
        g.threads[me].run = Run::Yielded;
        let _g = self.sched_and_wait(g, me, Kind::Release);
    }

    pub(crate) fn spawn_model_thread<F>(self: &Arc<Self>, f: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let (child, ctl) = {
            let mut g = self.lock();
            let me = with_current(|_, me| me);
            let child = g.threads.len();
            assert!(
                child < MAX_THREADS,
                "loom: model spawned more than {MAX_THREADS} threads"
            );
            g.tick(me);
            let mut clock = g.threads[me].clock;
            clock.tick(child);
            g.threads.push(ThreadState::new(clock));
            g.active += 1;
            (child, Arc::clone(self))
        };
        let handle = std::thread::Builder::new()
            .name(format!("loom-{child}"))
            .spawn(move || run_model_thread(ctl, child, f))
            .expect("spawn loom model thread");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        child
    }

    /// Blocks `me` until thread `target` finishes, establishing the join
    /// happens-before edge.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let g = self.lock();
        let mut g = self.sched_and_wait(g, me, Kind::Op);
        g.tick(me);
        if g.threads[target].run != Run::Finished {
            g.threads[me].run = Run::BlockedJoin { target };
            g = self.sched_and_wait(g, me, Kind::Release);
        }
        debug_assert_eq!(g.threads[target].run, Run::Finished);
        let fc = g.threads[target].finish_clock;
        g.threads[me].clock.join(&fc);
    }

    /// Modeled `FUTEX_WAIT`: blocks while the latest store equals `expected`.
    pub(crate) fn futex_wait(
        &self,
        me: usize,
        slot: &core::cell::UnsafeCell<crate::sync::atomic::Slot>,
        init: u64,
        expected: u64,
        timed: bool,
    ) -> FutexResult {
        let g = self.lock();
        let mut g = self.sched_and_wait(g, me, Kind::Op);
        let loc = self.ensure_location(&mut g, me, slot, init);
        g.tick(me);
        if g.futex_value(me, loc) != expected {
            return FutexResult::NotExpected;
        }
        g.threads[me].run = Run::BlockedFutex { loc, timed };
        g.threads[me].wake_sync = None;
        g = self.sched_and_wait(g, me, Kind::Release);
        let result = g.threads[me].futex_result;
        if let Some(ws) = g.threads[me].wake_sync.take() {
            // Conservative: a futex wake edge orders the waker's prior
            // operations before the woken thread (the protocols around it
            // re-establish this through their own atomics anyway).
            g.threads[me].clock.join(&ws);
        }
        result
    }

    /// Modeled `FUTEX_WAKE`: wakes up to `count` waiters (lowest thread id
    /// first — the model does not branch over kernel wake order).
    pub(crate) fn futex_wake(
        &self,
        me: usize,
        slot: &core::cell::UnsafeCell<crate::sync::atomic::Slot>,
        init: u64,
        count: usize,
    ) -> usize {
        self.visible_op(me, |ex, me| {
            let loc = self.ensure_location(ex, me, slot, init);
            ex.tick(me);
            let waker_clock = ex.threads[me].clock;
            let mut woken = 0;
            for t in 0..ex.threads.len() {
                if woken >= count {
                    break;
                }
                if ex.threads[t].run == (Run::BlockedFutex { loc, timed: true })
                    || ex.threads[t].run == (Run::BlockedFutex { loc, timed: false })
                {
                    ex.threads[t].run = Run::Ready;
                    ex.threads[t].futex_result = FutexResult::Woken;
                    ex.threads[t].wake_sync = Some(waker_clock);
                    woken += 1;
                }
            }
            woken
        })
    }

    fn finish_thread(&self, me: usize, outcome: Result<(), Box<dyn Any + Send>>) {
        let mut g = self.lock();
        match outcome {
            Ok(()) => {
                g.threads[me].run = Run::Finished;
                g.threads[me].finish_clock = g.threads[me].clock;
                g.active -= 1;
                // Wake joiners.
                for t in 0..g.threads.len() {
                    if g.threads[t].run == (Run::BlockedJoin { target: me }) {
                        g.threads[t].run = Run::Ready;
                    }
                }
                if g.poison.is_none() && g.panic_payload.is_none() {
                    g.sched(me, Kind::Release);
                }
            }
            Err(payload) => {
                g.threads[me].run = Run::Finished;
                g.active -= 1;
                if !payload.is::<PoisonExit>() && g.panic_payload.is_none() && g.poison.is_none() {
                    g.panic_payload = Some(payload);
                }
            }
        }
        drop(g);
        self.cv.notify_all();
    }
}

fn run_model_thread<F: FnOnce()>(ctl: Arc<Controller>, me: usize, f: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctl), me)));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        // Wait to be scheduled for the first time.
        let g = ctl.lock();
        drop(ctl.wait_turn(g, me));
        f();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    ctl.finish_thread(me, outcome.map(|_| ()));
}

// ---------------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------------

/// Model-checking configuration. Construct via [`Builder::default`] (which
/// honours `LOOM_MAX_PREEMPTIONS`, `LOOM_MAX_ITERATIONS` and `LOOM_LOG`) and
/// run with [`Builder::check`].
#[derive(Clone, Debug)]
pub struct Builder {
    /// Preemption bound per execution (default 2, `LOOM_MAX_PREEMPTIONS`).
    pub max_preemptions: u32,
    /// Hard cap on explored executions; exceeding it panics rather than
    /// silently under-exploring (default 2'000'000, `LOOM_MAX_ITERATIONS`).
    pub max_iterations: u64,
    /// Hard cap on visible operations per execution.
    pub max_steps: u64,
    /// Print the exploration summary to stderr (`LOOM_LOG`).
    pub log: bool,
}

impl Default for Builder {
    fn default() -> Builder {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        Builder {
            max_preemptions: env_u64("LOOM_MAX_PREEMPTIONS").unwrap_or(2) as u32,
            max_iterations: env_u64("LOOM_MAX_ITERATIONS").unwrap_or(2_000_000),
            max_steps: env_u64("LOOM_MAX_STEPS").unwrap_or(20_000),
            log: std::env::var_os("LOOM_LOG").is_some(),
        }
    }
}

impl Builder {
    /// Exhaustively explores `f` under the configured bounds, panicking on
    /// the first failing execution (assertion failure, deadlock, livelock).
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            !in_model(),
            "loom::model may not be nested inside another model"
        );
        let f = Arc::new(f);
        let mut path: Vec<Choice> = Vec::new();
        let mut iterations: u64 = 0;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                panic!(
                    "loom: exceeded {} executions without exhausting the search \
                     (raise LOOM_MAX_ITERATIONS or shrink the model)",
                    self.max_iterations
                );
            }
            let ctl = Arc::new(Controller::new(
                std::mem::take(&mut path),
                self.max_preemptions,
                self.max_steps,
            ));
            // The root model thread (id 0) is pre-registered in
            // `Execution::new` and starts holding the baton.
            {
                let ctl2 = Arc::clone(&ctl);
                let f = Arc::clone(&f);
                let handle = std::thread::Builder::new()
                    .name("loom-0".into())
                    .spawn(move || run_model_thread(ctl2, 0, move || f()))
                    .expect("spawn loom root thread");
                ctl.handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            // Wait for the execution to settle, then join every OS thread
            // (poisoned executions unwind all of them via PoisonExit).
            {
                let mut g = ctl.lock();
                while g.active > 0 && g.poison.is_none() && g.panic_payload.is_none() {
                    g = ctl.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
            }
            ctl.cv.notify_all();
            let handles: Vec<_> = ctl
                .handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            for h in handles {
                let _ = h.join();
            }
            let mut g = ctl.lock();
            if let Some(payload) = g.panic_payload.take() {
                drop(g);
                if self.log {
                    eprintln!("loom: failing execution found after {iterations} iteration(s)");
                }
                panic::resume_unwind(payload);
            }
            if let Some(reason) = g.poison.take() {
                drop(g);
                if self.log {
                    eprintln!("loom: failing execution found after {iterations} iteration(s)");
                }
                panic!("{reason}");
            }
            path = std::mem::take(&mut g.path);
            drop(g);
            if !advance_path(&mut path) {
                break;
            }
        }
        if self.log {
            eprintln!("loom: completed {iterations} execution(s), no failures");
        }
    }
}

/// Exhaustively explores every bounded interleaving of `f`. See the crate
/// docs for what "exhaustively" means under the configured bounds.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
