//! Modeled futex calls, mirroring the raw-syscall wrappers in
//! `nowa-context::sys`.
//!
//! Semantics:
//!
//! * [`futex_wait`] compares against the *latest* store to the word (the
//!   kernel reads physical memory coherently, so it can never see a stale
//!   value) and blocks while they are equal.
//! * Timed waits (`timed = true`) only "time out" at quiescence — when no
//!   thread is runnable. This keeps executions finite without exploding the
//!   schedule space, and it is exactly the right lens for lost-wakeup bugs:
//!   an *untimed* wait that is never woken becomes a reported deadlock,
//!   while a timed wait shows the bug is bounded by the timeout.
//! * [`futex_wake`] wakes the lowest-id waiters first; the model does not
//!   branch over kernel wake order (the protocols under test treat woken
//!   threads symmetrically).

use crate::sync::atomic::{self, AtomicU32};

pub use crate::rt::FutexResult;

/// Modeled `FUTEX_WAIT`: blocks while `*atom == expected`.
pub fn futex_wait(atom: &AtomicU32, expected: u32, timed: bool) -> FutexResult {
    let (slot, init) = atomic::slot_of_u32(atom);
    crate::rt::with_current(|ctl, me| ctl.futex_wait(me, slot, init, expected as u64, timed))
}

/// Modeled `FUTEX_WAKE`: wakes up to `count` waiters, returning how many.
pub fn futex_wake(atom: &AtomicU32, count: usize) -> usize {
    let (slot, init) = atomic::slot_of_u32(atom);
    crate::rt::with_current(|ctl, me| ctl.futex_wake(me, slot, init, count))
}
