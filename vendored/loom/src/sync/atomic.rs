//! Model-checked atomic types.
//!
//! Each atomic is a lazily-registered *location* in the current execution's
//! memory model (see the `rt` module): the constructors are `const fn` (so
//! `[const { AtomicPtr::new(null_mut()) }; N]` patterns keep compiling) and
//! the location is registered on first access, attributing the initial value
//! to the first accessor — sound, because the initial store is always
//! readable unless superseded by a visible newer store.
//!
//! Two deliberate deviations from the hardware, both on the permissive side
//! of the search space:
//!
//! * `compare_exchange_weak` never fails spuriously (spurious failures only
//!   add retry interleavings, they cannot hide bugs the strong CAS has).
//! * `fetch_*`/`swap`/CAS always operate on the newest store in modification
//!   order, as C11 requires of read-modify-writes.

use core::cell::UnsafeCell;
use core::fmt;
use core::marker::PhantomData;

pub use core::sync::atomic::Ordering;

use crate::rt;

/// Per-atomic registration state: which execution generation the location
/// was registered in, and its id. Only touched under the controller lock.
pub struct Slot {
    pub(crate) generation: u64,
    pub(crate) loc: u32,
}

macro_rules! atomic_common {
    ($name:ident, $t:ty) => {
        // SAFETY: the inner `UnsafeCell<Slot>` is only accessed while the
        // model controller's lock is held (exactly one model thread runs at
        // a time).
        unsafe impl Send for $name {}
        unsafe impl Sync for $name {}

        impl $name {
            fn op<R>(&self, f: impl FnOnce(&mut rt::Execution, usize, u32) -> R) -> R {
                rt::with_current(|ctl, me| {
                    ctl.visible_op(me, |ex, me| {
                        let loc = ctl.ensure_location(ex, me, &self.slot, Self::to_repr(self.init));
                        f(ex, me, loc)
                    })
                })
            }

            /// Loads a value, possibly a stale one permitted by `ord`.
            pub fn load(&self, ord: Ordering) -> $t {
                Self::from_repr(self.op(|ex, me, loc| ex.load(me, loc, ord)))
            }

            /// Stores a value.
            pub fn store(&self, val: $t, ord: Ordering) {
                let repr = Self::to_repr(val);
                self.op(|ex, me, loc| ex.store(me, loc, repr, ord))
            }

            /// Atomically replaces the value, returning the previous one.
            pub fn swap(&self, val: $t, ord: Ordering) -> $t {
                let repr = Self::to_repr(val);
                Self::from_repr(
                    self.op(|ex, me, loc| ex.rmw(me, loc, ord, Ordering::Relaxed, |_| Some(repr))),
                )
            }

            /// Strong compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                let cur = Self::to_repr(current);
                let new = Self::to_repr(new);
                let old = self.op(|ex, me, loc| {
                    ex.rmw(me, loc, success, failure, |o| {
                        if o == cur {
                            Some(new)
                        } else {
                            None
                        }
                    })
                });
                if old == cur {
                    Ok(Self::from_repr(old))
                } else {
                    Err(Self::from_repr(old))
                }
            }

            /// Weak compare-exchange; in the model it never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // The live value is execution state; printing it outside a
                // visible op would race the model. Print the type only.
                write!(f, concat!(stringify!($name), "(..)"))
            }
        }
    };
}

macro_rules! atomic_int {
    ($(#[$meta:meta])* $name:ident, $t:ty) => {
        $(#[$meta])*
        pub struct $name {
            init: $t,
            slot: UnsafeCell<Slot>,
        }

        impl $name {
            /// A new atomic holding `val`.
            pub const fn new(val: $t) -> $name {
                $name {
                    init: val,
                    slot: UnsafeCell::new(Slot {
                        generation: 0,
                        loc: 0,
                    }),
                }
            }

            #[inline]
            fn to_repr(v: $t) -> u64 {
                v as u64
            }

            #[inline]
            fn from_repr(r: u64) -> $t {
                r as $t
            }

            /// Atomic wrapping add; returns the previous value.
            pub fn fetch_add(&self, val: $t, ord: Ordering) -> $t {
                self.fetch_update_model(ord, |v| v.wrapping_add(val))
            }

            /// Atomic wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, val: $t, ord: Ordering) -> $t {
                self.fetch_update_model(ord, |v| v.wrapping_sub(val))
            }

            /// Atomic bitwise OR; returns the previous value.
            pub fn fetch_or(&self, val: $t, ord: Ordering) -> $t {
                self.fetch_update_model(ord, |v| v | val)
            }

            /// Atomic bitwise AND; returns the previous value.
            pub fn fetch_and(&self, val: $t, ord: Ordering) -> $t {
                self.fetch_update_model(ord, |v| v & val)
            }

            fn fetch_update_model(&self, ord: Ordering, f: impl Fn($t) -> $t) -> $t {
                Self::from_repr(self.op(|ex, me, loc| {
                    ex.rmw(me, loc, ord, Ordering::Relaxed, |o| {
                        Some(Self::to_repr(f(Self::from_repr(o))))
                    })
                }))
            }
        }

        atomic_common!($name, $t);
    };
}

atomic_int!(
    /// Model-checked `AtomicU32`.
    AtomicU32,
    u32
);
atomic_int!(
    /// Model-checked `AtomicU64`.
    AtomicU64,
    u64
);
atomic_int!(
    /// Model-checked `AtomicUsize`.
    AtomicUsize,
    usize
);
atomic_int!(
    /// Model-checked `AtomicI64` (two's-complement via the `u64` repr, so
    /// wrapping add/sub behave identically to hardware).
    AtomicI64,
    i64
);

/// Model-checked `AtomicBool`.
pub struct AtomicBool {
    init: bool,
    slot: UnsafeCell<Slot>,
}

impl AtomicBool {
    /// A new atomic holding `val`.
    pub const fn new(val: bool) -> AtomicBool {
        AtomicBool {
            init: val,
            slot: UnsafeCell::new(Slot {
                generation: 0,
                loc: 0,
            }),
        }
    }

    #[inline]
    fn to_repr(v: bool) -> u64 {
        v as u64
    }

    #[inline]
    fn from_repr(r: u64) -> bool {
        r != 0
    }

    /// Atomic logical OR; returns the previous value.
    pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
        Self::from_repr(self.op(|ex, me, loc| {
            ex.rmw(me, loc, ord, Ordering::Relaxed, |o| {
                Some(Self::to_repr(Self::from_repr(o) | val))
            })
        }))
    }

    /// Atomic logical AND; returns the previous value.
    pub fn fetch_and(&self, val: bool, ord: Ordering) -> bool {
        Self::from_repr(self.op(|ex, me, loc| {
            ex.rmw(me, loc, ord, Ordering::Relaxed, |o| {
                Some(Self::to_repr(Self::from_repr(o) & val))
            })
        }))
    }
}

atomic_common!(AtomicBool, bool);

/// Model-checked `AtomicPtr<T>`.
///
/// Pointers round-trip through the `u64` repr as addresses; the model never
/// dereferences them, and loom builds never run under Miri, so the
/// provenance laundering is confined to the checker.
pub struct AtomicPtr<T> {
    init: *mut T,
    slot: UnsafeCell<Slot>,
    _marker: PhantomData<*mut T>,
}

// SAFETY: as for std's `AtomicPtr` — the cell holds the pointer itself; the
// `Slot` is only touched under the controller lock.
unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    /// A new atomic holding `ptr`.
    pub const fn new(ptr: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            init: ptr,
            slot: UnsafeCell::new(Slot {
                generation: 0,
                loc: 0,
            }),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn to_repr(p: *mut T) -> u64 {
        p as usize as u64
    }

    #[inline]
    fn from_repr(r: u64) -> *mut T {
        r as usize as *mut T
    }

    fn op<R>(&self, f: impl FnOnce(&mut rt::Execution, usize, u32) -> R) -> R {
        rt::with_current(|ctl, me| {
            ctl.visible_op(me, |ex, me| {
                let loc = ctl.ensure_location(ex, me, &self.slot, Self::to_repr(self.init));
                f(ex, me, loc)
            })
        })
    }

    /// Loads the pointer, possibly a stale one permitted by `ord`.
    pub fn load(&self, ord: Ordering) -> *mut T {
        Self::from_repr(self.op(|ex, me, loc| ex.load(me, loc, ord)))
    }

    /// Stores a pointer.
    pub fn store(&self, ptr: *mut T, ord: Ordering) {
        let repr = Self::to_repr(ptr);
        self.op(|ex, me, loc| ex.store(me, loc, repr, ord))
    }

    /// Atomically replaces the pointer, returning the previous one.
    pub fn swap(&self, ptr: *mut T, ord: Ordering) -> *mut T {
        let repr = Self::to_repr(ptr);
        Self::from_repr(
            self.op(|ex, me, loc| ex.rmw(me, loc, ord, Ordering::Relaxed, |_| Some(repr))),
        )
    }

    /// Strong compare-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        let cur = Self::to_repr(current);
        let new = Self::to_repr(new);
        let old = self.op(|ex, me, loc| {
            ex.rmw(me, loc, success, failure, |o| {
                if o == cur {
                    Some(new)
                } else {
                    None
                }
            })
        });
        if old == cur {
            Ok(Self::from_repr(old))
        } else {
            Err(Self::from_repr(old))
        }
    }

    /// Weak compare-exchange; in the model it never fails spuriously.
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AtomicPtr(..)")
    }
}

/// Model-checked `atomic::fence`.
pub fn fence(ord: Ordering) {
    rt::with_current(|ctl, me| ctl.visible_op(me, |ex, me| ex.fence(me, ord)))
}

pub(crate) fn slot_of_u32(atom: &AtomicU32) -> (&UnsafeCell<Slot>, u64) {
    (&atom.slot, AtomicU32::to_repr(atom.init))
}
