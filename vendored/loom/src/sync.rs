//! Mirrors the `std::sync` surface the workspace uses under loom.

pub use std::sync::Arc;

pub mod atomic;
