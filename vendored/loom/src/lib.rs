//! An offline stand-in for [loom](https://crates.io/crates/loom): a bounded
//! model checker for concurrent Rust, implementing the API subset this
//! workspace uses.
//!
//! This vendored crate exists because the workspace builds without network
//! access; it is *not* the upstream loom. It implements the same testing
//! discipline — run a closure under every bounded interleaving of its
//! threads, with atomics that can legally return stale values wherever the
//! C11 memory model permits — over a smaller feature surface: the atomic
//! types, `thread::{spawn,yield_now}`, `hint::spin_loop`, and (beyond
//! upstream) modeled futex wait/wake matching `nowa-context`'s raw-syscall
//! wrappers.
//!
//! # Usage
//!
//! ```
//! use loom::sync::atomic::{AtomicU32, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let flag = Arc::new(AtomicU32::new(0));
//!     let data = Arc::new(AtomicU32::new(0));
//!     let t = {
//!         let (flag, data) = (Arc::clone(&flag), Arc::clone(&data));
//!         loom::thread::spawn(move || {
//!             data.store(7, Ordering::Relaxed);
//!             flag.store(1, Ordering::Release);
//!         })
//!     };
//!     while flag.load(Ordering::Acquire) == 0 {
//!         loom::thread::yield_now();
//!     }
//!     assert_eq!(data.load(Ordering::Relaxed), 7);
//!     t.join().unwrap();
//! });
//! ```
//!
//! # What a pass means
//!
//! Every execution within the bounds (preemptions per execution, modeled
//! staleness window, conservative SC approximation — see the `rt` module's
//! docs) ran without an assertion failure, deadlock, or livelock. That is
//! evidence, not proof: the bound is chosen so the classic ordering bugs
//! (store buffering, message-passing without release/acquire, lost
//! wakeups) all reproduce, which the workspace's `#[should_panic]`
//! canaries demonstrate.

#![warn(missing_docs)]

mod rt;

pub mod futex;
pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::{model, Builder, MAX_THREADS};
