//! Offline stand-in for the `criterion` crate.
//!
//! The reproduction container cannot fetch crates, so this mini-harness
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`,
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology: each `bench_function` warms up for `warm_up_time` (also
//! used to calibrate the per-sample iteration count), then takes
//! `sample_size` samples and reports min / median / mean ± std-dev per
//! iteration. No plotting, no statistical regression testing — numbers go
//! to stdout, which is all the repo's benches need.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away (re-export of
/// `std::hint::black_box`, matching `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark harness configuration + runner (criterion API subset).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(200),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up (and calibration) budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Applies a substring filter from the command line (cargo bench passes
    /// the user's filter argument through).
    fn with_cli_filter(mut self) -> Criterion {
        // cargo passes: <filter>? --bench [--exact]; take the first
        // non-flag argument as a substring filter.
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Runs one benchmark: calibrates an iteration count, samples it, and
    /// prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            mode: Mode::Calibrate {
                budget: self.warm_up_time,
            },
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        f(&mut b);
        let iters = b.iters_per_sample.max(1);
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        b.mode = Mode::Measure {
            sample_budget: Duration::from_secs_f64(per_sample),
            samples_wanted: self.sample_size,
        };
        b.samples.clear();
        b.iters_per_sample = iters;
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

enum Mode {
    /// Warm up and find an iteration count that takes a measurable slice
    /// of the budget.
    Calibrate { budget: Duration },
    /// Take timed samples of `iters_per_sample` iterations each.
    Measure {
        sample_budget: Duration,
        samples_wanted: usize,
    },
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    /// Nanoseconds **per iteration**, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` by running it repeatedly and timing batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::Calibrate { budget } => {
                // Double the batch size until one batch takes >= ~1/20 of
                // the warm-up budget (or the budget runs out).
                let start = Instant::now();
                let mut iters: u64 = 1;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        hint::black_box(routine());
                    }
                    let batch = t0.elapsed();
                    if batch >= budget / 20 || start.elapsed() >= budget {
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
                self.iters_per_sample = iters;
            }
            Mode::Measure {
                sample_budget,
                samples_wanted,
            } => {
                for _ in 0..samples_wanted {
                    let deadline = Instant::now() + sample_budget;
                    let t0 = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        hint::black_box(routine());
                    }
                    let elapsed = t0.elapsed();
                    self.samples
                        .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
                    // Keep long benches roughly within budget.
                    if Instant::now() > deadline + sample_budget {
                        break;
                    }
                }
            }
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let var =
        sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / sorted.len().max(1) as f64;
    println!(
        "{id:<48} min {:>12} median {:>12} mean {:>12} ± {:>10}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(var.sqrt()),
        sorted.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function (criterion-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.__with_cli_filter();
            $({
                let f: fn(&mut $crate::Criterion) = $target;
                f(&mut criterion);
            })+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal hook for [`criterion_group!`]; applies CLI filtering.
    #[doc(hidden)]
    pub fn __with_cli_filter(self) -> Criterion {
        self.with_cli_filter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        // Smoke: must terminate and not panic.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
