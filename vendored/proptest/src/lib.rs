//! Offline stand-in for the `proptest` crate.
//!
//! The reproduction container cannot fetch crates, so this crate
//! reimplements the subset of proptest the workspace's tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive` and `boxed`;
//! * [`any`] for integers and booleans, [`Just`], integer-range strategies,
//!   tuple strategies, [`collection::vec`], `bool::ANY` and weighted
//!   [`prop_oneof!`] unions;
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * a deterministic [`test_runner`] seeded from `PROPTEST_SEED` (falling
//!   back to a fixed default so CI is reproducible).
//!
//! Deliberately **not** implemented: shrinking. A failing case reports its
//! case number and seed instead; rerun with `PROPTEST_SEED` to reproduce.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh RNG from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire-style multiply-shift; bias is irrelevant for testing.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A generator of test values (proptest API subset; no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves, `f` wraps an
    /// inner strategy into a branch. Recursion stops after `levels`
    /// expansions (the `_desired_size` / `_expected_branch` hints of the
    /// real proptest API are accepted but unused).
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..levels {
            // Keep leaves reachable at every level so expected size stays
            // bounded; weight expansion higher so deep trees do occur.
            let expanded = f(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, expanded)]).boxed();
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice between strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over weighted arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Generates values of `T` from its whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain generator.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates both booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s of values from `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property (produced by [`prop_assert!`] and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The case loop behind [`proptest!`].
pub mod test_runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => {
                let s = s.trim();
                let parsed = if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                };
                parsed.unwrap_or_else(|| panic!("unparsable PROPTEST_SEED: {s:?}"))
            }
            // Deterministic default: CI failures are always reproducible.
            Err(_) => 0xA076_1D64_78BD_642F,
        }
    }

    /// Runs `f` for `config.cases` cases with deterministic per-case RNGs.
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// reporting the case number and seed.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = base_seed();
        for case in 0..config.cases {
            let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0xD129_0D3E_97F8_B8D3));
            match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "[{name}] property failed at case {case}/{} (PROPTEST_SEED={seed:#x}): {e}",
                    config.cases
                ),
                Err(payload) => {
                    eprintln!(
                        "[{name}] panicked at case {case}/{} (PROPTEST_SEED={seed:#x})",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: `fn name(pattern in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// A weighted union of strategies: `prop_oneof![3 => a, 2 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`,
    /// `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2u64..=3).sample(&mut rng);
            assert!((2..=3).contains(&w));
        }
    }

    #[test]
    fn vec_and_oneof_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Op {
            Push(usize),
            Pop,
        }
        let strat = prop::collection::vec(
            prop_oneof![
                3 => any::<usize>().prop_map(Op::Push),
                1 => Just(Op::Pop),
            ],
            0..50,
        );
        let mut rng = TestRng::new(1);
        let mut pushes = 0usize;
        let mut pops = 0usize;
        for _ in 0..200 {
            let ops = strat.sample(&mut rng);
            assert!(ops.len() < 50);
            for op in ops {
                match op {
                    Op::Push(_) => pushes += 1,
                    Op::Pop => pops += 1,
                }
            }
        }
        assert!(pushes > pops, "weights respected: {pushes} vs {pops}");
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload exercises prop_map, never read back
            Leaf(u64),
            Fork(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Fork(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 3, |inner| {
                prop::collection::vec(inner, 2..=3).prop_map(Tree::Fork)
            });
        let mut rng = TestRng::new(99);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_depth > 1, "recursion reachable");
        assert!(max_depth <= 5, "depth bounded, got {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: multiple params, mut patterns, trailing comma.
        #[test]
        fn macro_roundtrip(
            mut xs in prop::collection::vec(any::<u64>(), 0..20),
            flip in prop::bool::ANY,
        ) {
            if flip {
                xs.reverse();
            }
            let n = xs.len();
            prop_assert!(n < 20);
            prop_assert_eq!(xs.len(), n, "length is stable");
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports() {
        crate::test_runner::run("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
