//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The reproduction container has no network access and no vendored
//! registry, so the real `parking_lot` cannot be fetched. This crate
//! implements the (small) API subset the workspace uses — `Mutex::lock`,
//! `Condvar::{wait, wait_for, notify_one, notify_all}` — with
//! parking_lot's signatures: `lock()` returns the guard directly (poisoning
//! is swallowed, as parking_lot has no poisoning), and condvar waits take
//! `&mut MutexGuard` instead of consuming the guard.
//!
//! Performance note: std's mutex on Linux is a futex-based lock comparable
//! to parking_lot for the uncontended paths this workspace cares about
//! (the runtime's hot paths are lock-free; locks guard the injector, the
//! THE deque's thief side, and teardown).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (parking_lot-compatible subset).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The `Option` is always `Some` except transiently inside
/// [`Condvar::wait`]/[`Condvar::wait_for`], which must move the std guard
/// through std's consuming wait API.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, does not return a poison error: parking_lot has no
    /// poisoning, so a poisoned lock is recovered silently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (parking_lot-compatible subset: waits take
/// `&mut MutexGuard` rather than consuming the guard).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            *done = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
